// Tests for src/model: token dictionary, profile store, ground truth,
// comparison ordering, and dataset increment splitting.

#include <gtest/gtest.h>

#include "model/comparison.h"
#include "model/dataset.h"
#include "model/entity_profile.h"
#include "model/ground_truth.h"
#include "model/profile_store.h"
#include "model/token_dictionary.h"

namespace pier {
namespace {

TEST(TokenDictionaryTest, InternAssignsDenseIds) {
  TokenDictionary dict;
  EXPECT_EQ(dict.Intern("alpha"), 0u);
  EXPECT_EQ(dict.Intern("beta"), 1u);
  EXPECT_EQ(dict.Intern("alpha"), 0u);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
}

TEST(TokenDictionaryTest, LookupMissReturnsInvalid) {
  TokenDictionary dict;
  dict.Intern("x");
  EXPECT_EQ(dict.Lookup("x"), 0u);
  EXPECT_EQ(dict.Lookup("y"), kInvalidTokenId);
}

TEST(TokenDictionaryTest, SpellingRoundTrips) {
  TokenDictionary dict;
  const TokenId id = dict.Intern("gamma");
  EXPECT_EQ(dict.Spelling(id), "gamma");
}

TEST(TokenDictionaryTest, DocFrequencyAccumulates) {
  TokenDictionary dict;
  const TokenId id = dict.Intern("tok");
  EXPECT_EQ(dict.DocFrequency(id), 0u);
  dict.IncrementDocFrequency(id);
  dict.IncrementDocFrequency(id);
  EXPECT_EQ(dict.DocFrequency(id), 2u);
}

TEST(ProfileStoreTest, AddAndGet) {
  ProfileStore store;
  store.Add(EntityProfile(0, 0, {{"a", "v"}}));
  store.Add(EntityProfile(1, 1, {}));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Get(0).CopyAttributes()[0].name, "a");
  EXPECT_EQ(store.Get(1).source, 1);
}

TEST(ProfileStoreTest, RejectsNonDenseIds) {
  ProfileStore store;
  EXPECT_DEATH(store.Add(EntityProfile(5, 0, {})), "PIER_CHECK");
}

TEST(ProfileStoreTest, AddressesStableAcrossGrowth) {
  // The parallel match executor reads profiles lock-free while ingest
  // appends; that is only sound because Get() references never move.
  ProfileStore store;
  store.Add(EntityProfile(0, 0, {{"a", "first"}}));
  const EntityProfile* first = &store.Get(0);
  // Cross several chunk boundaries (chunks hold 4096 profiles).
  for (ProfileId id = 1; id < 10000; ++id) {
    store.Add(EntityProfile(id, 0, {}));
  }
  EXPECT_EQ(&store.Get(0), first);
  EXPECT_EQ(store.Get(0).CopyAttributes()[0].value, "first");
  EXPECT_EQ(store.size(), 10000u);
  EXPECT_EQ(store.Get(9999).id, 9999u);
  const EntityProfile* mid = &store.Get(5000);
  store.Add(EntityProfile(10000, 0, {}));
  EXPECT_EQ(&store.Get(5000), mid);
}

TEST(ProfileStoreTest, GetMutableWritesThrough) {
  ProfileStore store;
  store.Add(EntityProfile(0, 0, {}));
  store.GetMutable(0).set_flat_text("filled");
  EXPECT_EQ(store.Get(0).flat_text(), "filled");
}

TEST(GroundTruthTest, SymmetricMembership) {
  GroundTruth truth;
  truth.AddMatch(1, 2);
  EXPECT_TRUE(truth.IsMatch(1, 2));
  EXPECT_TRUE(truth.IsMatch(2, 1));
  EXPECT_FALSE(truth.IsMatch(1, 3));
  EXPECT_EQ(truth.size(), 1u);
}

TEST(GroundTruthTest, DuplicateInsertIgnored) {
  GroundTruth truth;
  truth.AddMatch(1, 2);
  truth.AddMatch(2, 1);
  EXPECT_EQ(truth.size(), 1u);
}

TEST(ComparisonTest, KeyCanonicalizesPairOrder) {
  const Comparison a(3, 7, 1.0);
  const Comparison b(7, 3, 9.0);
  EXPECT_EQ(a.Key(), b.Key());
}

TEST(ComparisonTest, CompareByWeightOrdersByWeight) {
  const CompareByWeight less;
  EXPECT_TRUE(less(Comparison(0, 1, 1.0), Comparison(0, 2, 2.0)));
  EXPECT_FALSE(less(Comparison(0, 1, 2.0), Comparison(0, 2, 1.0)));
}

TEST(ComparisonTest, CompareByWeightTieBreakDeterministic) {
  const CompareByWeight less;
  const Comparison a(0, 1, 1.0);
  const Comparison b(0, 2, 1.0);
  // Exactly one direction holds: a strict weak order with total
  // tie-breaking.
  EXPECT_NE(less(a, b), less(b, a));
}

TEST(ComparisonTest, CompareByBlockThenWeightPrefersSmallBlocks) {
  const CompareByBlockThenWeight less;
  const Comparison small_block(0, 1, 1.0, 3);
  const Comparison big_block(0, 2, 100.0, 50);
  // The small-block comparison is the "greater" (better) one.
  EXPECT_TRUE(less(big_block, small_block));
  EXPECT_FALSE(less(small_block, big_block));
}

TEST(ComparisonTest, CompareByBlockThenWeightUsesWeightWithinBlock) {
  const CompareByBlockThenWeight less;
  const Comparison low(0, 1, 1.0, 5);
  const Comparison high(0, 2, 9.0, 5);
  EXPECT_TRUE(less(low, high));
}

TEST(DatasetTest, SplitIntoEqualIncrements) {
  Dataset d;
  d.profiles.resize(10);
  const auto increments = SplitIntoIncrements(d, 5);
  ASSERT_EQ(increments.size(), 5u);
  for (const auto& inc : increments) EXPECT_EQ(inc.size(), 2u);
  EXPECT_EQ(increments.front().begin, 0u);
  EXPECT_EQ(increments.back().end, 10u);
}

TEST(DatasetTest, SplitDistributesRemainder) {
  Dataset d;
  d.profiles.resize(10);
  const auto increments = SplitIntoIncrements(d, 3);
  ASSERT_EQ(increments.size(), 3u);
  size_t total = 0;
  size_t prev_end = 0;
  for (const auto& inc : increments) {
    EXPECT_EQ(inc.begin, prev_end);  // contiguous
    prev_end = inc.end;
    total += inc.size();
    EXPECT_GE(inc.size(), 3u);
    EXPECT_LE(inc.size(), 4u);
  }
  EXPECT_EQ(total, 10u);
}

TEST(DatasetTest, SplitMoreIncrementsThanProfiles) {
  Dataset d;
  d.profiles.resize(3);
  const auto increments = SplitIntoIncrements(d, 10);
  EXPECT_EQ(increments.size(), 3u);
  for (const auto& inc : increments) EXPECT_EQ(inc.size(), 1u);
}

TEST(DatasetTest, SplitEmptyDataset) {
  Dataset d;
  EXPECT_TRUE(SplitIntoIncrements(d, 4).empty());
  d.profiles.resize(4);
  EXPECT_TRUE(SplitIntoIncrements(d, 0).empty());
}

TEST(DatasetTest, NumProfilesPerSource) {
  Dataset d;
  d.profiles.push_back(EntityProfile(0, 0, {}));
  d.profiles.push_back(EntityProfile(1, 1, {}));
  d.profiles.push_back(EntityProfile(2, 1, {}));
  EXPECT_EQ(d.NumProfiles(0), 1u);
  EXPECT_EQ(d.NumProfiles(1), 2u);
}

}  // namespace
}  // namespace pier
