// Tests for mutable streams: delete and correction increments
// end-to-end. The contract under test is the delete-then-replay
// oracle: a stream that ingests records and later deletes (or
// corrects) some of them must converge to exactly the clusters of a
// stream that never contained the deleted records (and always carried
// the corrected content) -- at every shard count, and across a
// mid-stream checkpoint/restore. Plus unit coverage for the two new
// building blocks (counting Bloom filter, pair registry) and a
// concurrent delete-vs-query stress (this binary runs under TSan).

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/pier_pipeline.h"
#include "datagen/generators.h"
#include "model/comparison.h"
#include "model/pair_registry.h"
#include "persist/checkpoint_manager.h"
#include "serve/cluster_index.h"
#include "similarity/parallel_executor.h"
#include "stream/sharded_pipeline.h"
#include "util/counting_bloom_filter.h"
#include "util/serial.h"

namespace pier {
namespace {

uint64_t TestKey(uint64_t i) { return (i + 1) * 0x9E3779B97F4A7C15ull; }

// ---------------------------------------------------------------------------
// CountingBloomFilter (single slice)

TEST(CountingBloomFilterTest, AddRemoveSingleKey) {
  CountingBloomFilter filter(64, 0.01);
  EXPECT_FALSE(filter.MayContain(TestKey(1)));
  filter.Add(TestKey(1));
  EXPECT_TRUE(filter.MayContain(TestKey(1)));
  EXPECT_TRUE(filter.Remove(TestKey(1)));
  // The only key's cells were at 1; the decrement empties the filter.
  EXPECT_FALSE(filter.MayContain(TestKey(1)));
  // Removing a definitely-absent key touches nothing and says so.
  EXPECT_FALSE(filter.Remove(TestKey(2)));
}

TEST(CountingBloomFilterTest, NoFalseNegativesUnderInterleavedRemovals) {
  CountingBloomFilter filter(256, 0.01);
  for (uint64_t i = 0; i < 200; ++i) filter.Add(TestKey(i));
  for (uint64_t i = 0; i < 200; i += 2) filter.Remove(TestKey(i));
  // Survivors must all still test positive: removals may only clear
  // cells the removed keys actually own (or leave saturated cells
  // alone), never cells a live key depends on exclusively.
  for (uint64_t i = 1; i < 200; i += 2) {
    EXPECT_TRUE(filter.MayContain(TestKey(i))) << i;
  }
  // Most removed keys are really gone (false positives allowed).
  size_t lingering = 0;
  for (uint64_t i = 0; i < 200; i += 2) {
    if (filter.MayContain(TestKey(i))) ++lingering;
  }
  EXPECT_LT(lingering, 30u);
}

TEST(CountingBloomFilterTest, SaturatedCellsStick) {
  CountingBloomFilter filter(16, 0.01);
  // Four insertions drive every cell of the key to the 2-bit ceiling
  // (3), which is sticky: removals skip saturated cells so a live key
  // sharing them can never be falsely evicted.
  for (int i = 0; i < 4; ++i) filter.Add(TestKey(7));
  for (int i = 0; i < 4; ++i) filter.Remove(TestKey(7));
  EXPECT_TRUE(filter.MayContain(TestKey(7)));
}

TEST(CountingBloomFilterTest, SnapshotRoundTripAndTruncationRejection) {
  CountingBloomFilter filter(128, 0.01);
  for (uint64_t i = 0; i < 100; ++i) filter.Add(TestKey(i));
  for (uint64_t i = 0; i < 40; ++i) filter.Remove(TestKey(i));
  std::ostringstream out;
  filter.Snapshot(out);
  const std::string bytes = out.str();
  {
    std::istringstream in(bytes);
    auto restored = CountingBloomFilter::FromSnapshot(in);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->num_insertions(), filter.num_insertions());
    EXPECT_EQ(restored->num_removals(), filter.num_removals());
    for (uint64_t i = 0; i < 150; ++i) {
      EXPECT_EQ(restored->MayContain(TestKey(i)), filter.MayContain(TestKey(i)))
          << i;
    }
    std::ostringstream again;
    restored->Snapshot(again);
    EXPECT_EQ(again.str(), bytes);
  }
  for (size_t len = 0; len < bytes.size(); len += 9) {
    std::istringstream in(bytes.substr(0, len));
    EXPECT_EQ(CountingBloomFilter::FromSnapshot(in), nullptr) << len;
  }
}

// ---------------------------------------------------------------------------
// ScalableCountingBloomFilter

TEST(ScalableCountingBloomFilterTest, TestAndAddGrowsAndRemoves) {
  ScalableCountingBloomFilter::Options options;
  options.initial_capacity = 32;
  ScalableCountingBloomFilter filter(options);
  // The removal contract requires pairing each Remove with a prior
  // *actual* insert (a TestAndAdd that returned false) -- removing a
  // key whose insert was swallowed as a false positive decrements
  // cells other keys own. The pipeline enforces this via its pair
  // registries; the test mirrors it by only removing `inserted` keys.
  std::vector<uint64_t> inserted;
  size_t false_positives = 0;
  for (uint64_t i = 0; i < 500; ++i) {
    if (filter.TestAndAdd(TestKey(i))) {
      ++false_positives;
    } else {
      inserted.push_back(TestKey(i));
    }
  }
  EXPECT_LT(false_positives, 25u);  // design rate ~1%, tightened
  EXPECT_GT(filter.num_slices(), 1u);
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_TRUE(filter.MayContain(TestKey(i))) << i;
    EXPECT_TRUE(filter.TestAndAdd(TestKey(i))) << i;
  }
  ASSERT_GT(inserted.size(), 400u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(filter.Remove(inserted[i])) << i;
  }
  // Survivors span every growth slice and must all remain present.
  for (size_t i = 100; i < inserted.size(); ++i) {
    EXPECT_TRUE(filter.MayContain(inserted[i])) << i;
  }
  size_t lingering = 0;
  for (size_t i = 0; i < 100; ++i) {
    if (filter.MayContain(inserted[i])) ++lingering;
  }
  EXPECT_LT(lingering, 30u);
}

TEST(ScalableCountingBloomFilterTest, SnapshotRoundTripsByteIdentically) {
  ScalableCountingBloomFilter::Options options;
  options.initial_capacity = 64;
  ScalableCountingBloomFilter filter(options);
  for (uint64_t i = 0; i < 300; ++i) filter.Add(TestKey(i));
  for (uint64_t i = 0; i < 80; ++i) filter.Remove(TestKey(i));
  std::ostringstream out;
  filter.Snapshot(out);
  const std::string bytes = out.str();

  ScalableCountingBloomFilter restored(options);
  std::istringstream in(bytes);
  ASSERT_TRUE(restored.Restore(in));
  EXPECT_EQ(restored.num_slices(), filter.num_slices());
  EXPECT_EQ(restored.num_insertions(), filter.num_insertions());
  EXPECT_EQ(restored.num_removals(), filter.num_removals());
  for (uint64_t i = 0; i < 400; ++i) {
    EXPECT_EQ(restored.MayContain(TestKey(i)), filter.MayContain(TestKey(i)))
        << i;
  }
  std::ostringstream again;
  restored.Snapshot(again);
  EXPECT_EQ(again.str(), bytes);
}

TEST(ScalableCountingBloomFilterTest, RestoreSurvivesHostileSnapshots) {
  ScalableCountingBloomFilter::Options options;
  options.initial_capacity = 64;
  ScalableCountingBloomFilter filter(options);
  for (uint64_t i = 0; i < 200; ++i) filter.Add(TestKey(i));
  std::ostringstream out;
  filter.Snapshot(out);
  const std::string bytes = out.str();
  // Every truncation must be rejected (and never crash or over-read).
  for (size_t len = 0; len < bytes.size(); len += 7) {
    ScalableCountingBloomFilter restored(options);
    std::istringstream in(bytes.substr(0, len));
    EXPECT_FALSE(restored.Restore(in)) << "truncated at " << len;
  }
  // Single-byte corruption: sizing/bookkeeping damage must be
  // rejected; damage confined to cell payloads may decode, but the
  // restored filter must stay safely queryable either way.
  for (size_t pos = 0; pos < bytes.size(); pos += 11) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x5A);
    ScalableCountingBloomFilter restored(options);
    std::istringstream in(corrupt);
    if (restored.Restore(in)) {
      for (uint64_t i = 0; i < 50; ++i) {
        (void)restored.MayContain(TestKey(i));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// PairRegistry

TEST(PairRegistryTest, TakeErasesBothDirectionsExactlyOnce) {
  PairRegistry registry;
  registry.Add(1, 2);
  registry.Add(1, 3);
  registry.Add(2, 3);
  EXPECT_EQ(registry.num_pairs(), 3u);

  std::vector<ProfileId> taken = registry.Take(1);
  std::sort(taken.begin(), taken.end());
  EXPECT_EQ(taken, (std::vector<ProfileId>{2, 3}));
  EXPECT_EQ(registry.num_pairs(), 1u);
  // The reverse directions are gone: 2 and 3 no longer report 1.
  EXPECT_EQ(registry.Take(2), (std::vector<ProfileId>{3}));
  EXPECT_EQ(registry.num_pairs(), 0u);
  EXPECT_TRUE(registry.Take(3).empty());
  EXPECT_TRUE(registry.empty());
  EXPECT_TRUE(registry.Take(99).empty());
}

TEST(PairRegistryTest, SnapshotRoundTripsCanonically) {
  PairRegistry registry;
  registry.Add(5, 2);
  registry.Add(2, 9);
  registry.Add(5, 9);
  registry.Add(0, 5);
  std::ostringstream out;
  registry.Snapshot(out);
  const std::string bytes = out.str();

  PairRegistry restored;
  std::istringstream in(bytes);
  ASSERT_TRUE(restored.Restore(in));
  EXPECT_EQ(restored.num_pairs(), registry.num_pairs());
  std::ostringstream again;
  restored.Snapshot(again);
  EXPECT_EQ(again.str(), bytes);

  std::vector<ProfileId> taken = restored.Take(5);
  std::sort(taken.begin(), taken.end());
  EXPECT_EQ(taken, (std::vector<ProfileId>{0, 2, 9}));
}

TEST(PairRegistryTest, RestoreRejectsMalformedPayloads) {
  // Asymmetric content: a single direction (odd total) cannot come
  // from a Snapshot, which records every pair under both endpoints.
  {
    std::ostringstream out;
    serial::WriteU64(out, 1);
    serial::WriteU32(out, 1);
    serial::WriteVec(out, std::vector<ProfileId>{2}, serial::WriteU32);
    PairRegistry registry;
    std::istringstream in(out.str());
    EXPECT_FALSE(registry.Restore(in));
  }
  // Empty partner list.
  {
    std::ostringstream out;
    serial::WriteU64(out, 1);
    serial::WriteU32(out, 1);
    serial::WriteVec(out, std::vector<ProfileId>{}, serial::WriteU32);
    PairRegistry registry;
    std::istringstream in(out.str());
    EXPECT_FALSE(registry.Restore(in));
  }
  // Duplicate entry id.
  {
    std::ostringstream out;
    serial::WriteU64(out, 2);
    serial::WriteU32(out, 1);
    serial::WriteVec(out, std::vector<ProfileId>{2}, serial::WriteU32);
    serial::WriteU32(out, 1);
    serial::WriteVec(out, std::vector<ProfileId>{3}, serial::WriteU32);
    PairRegistry registry;
    std::istringstream in(out.str());
    EXPECT_FALSE(registry.Restore(in));
  }
  // Truncation.
  {
    std::ostringstream out;
    serial::WriteU64(out, 3);
    PairRegistry registry;
    std::istringstream in(out.str());
    EXPECT_FALSE(registry.Restore(in));
  }
  // A non-empty registry refuses to restore over itself.
  {
    PairRegistry donor;
    donor.Add(1, 2);
    std::ostringstream out;
    donor.Snapshot(out);
    PairRegistry registry;
    registry.Add(7, 8);
    std::istringstream in(out.str());
    EXPECT_FALSE(registry.Restore(in));
  }
}

// ---------------------------------------------------------------------------
// Single-pipeline mutations

// Drives the pipeline to exhaustion, recording every positive verdict
// into its cluster index (what the realtime worker does).
void Exhaust(PierPipeline& pipeline, const Matcher& matcher) {
  ParallelMatchExecutor executor(&matcher, 1, nullptr);
  for (;;) {
    const std::vector<Comparison> batch = pipeline.EmitBatch(256);
    if (batch.empty()) break;
    const std::vector<MatchVerdict> verdicts =
        executor.ExecuteVerdicts(batch, pipeline.profiles());
    for (size_t i = 0; i < batch.size(); ++i) {
      if (verdicts[i].is_match) pipeline.RecordMatch(batch[i].x, batch[i].y);
    }
  }
}

// Deterministic executed set (see sharded_pipeline_test.cc) plus
// mutation support.
PierOptions MutableEquivalenceOptions(DatasetKind kind) {
  PierOptions options;
  options.kind = kind;
  options.strategy = PierStrategy::kIPes;
  options.exact_executed_filter = true;
  options.blocking.max_block_size = 0;
  options.mutable_stream = true;
  return options;
}

// The small end-to-end scenario every strategy must pass, on the
// *counting-filter* path (exact_executed_filter = false): delete a
// cluster member, survivors keep their direct edge; correct a record
// away and its matches dissolve; correct it back and the executed
// filter must have forgotten the old comparisons, or the re-ingested
// content could never re-match (the bug the counting filter exists to
// prevent).
void RunDeleteCorrectReplayScenario(PierStrategy strategy) {
  SCOPED_TRACE(std::string("strategy=") + ToString(strategy));
  PierOptions options;
  options.kind = DatasetKind::kDirty;
  options.strategy = strategy;
  options.mutable_stream = true;
  PierPipeline pipeline(options);
  const JaccardMatcher matcher(0.5);

  pipeline.Ingest({EntityProfile(0, 0, {{"n", "alpha beta"}}),
                   EntityProfile(1, 0, {{"n", "alpha beta"}}),
                   EntityProfile(2, 0, {{"n", "alpha beta gamma"}})});
  pipeline.NotifyStreamEnd();
  Exhaust(pipeline, matcher);
  // Jaccard: 0-1 = 1.0, 0-2 = 1-2 = 2/3 -- one cluster {0, 1, 2}.
  EXPECT_EQ(pipeline.clusters().ClusterIdOf(0), 0u);
  EXPECT_EQ(pipeline.clusters().ClusterIdOf(1), 0u);
  EXPECT_EQ(pipeline.clusters().ClusterIdOf(2), 0u);

  // Delete 1: the 0-2 edge survives, so {0, 2} stays one cluster.
  pipeline.Delete({1});
  EXPECT_TRUE(pipeline.clusters().IsDeleted(1));
  EXPECT_EQ(pipeline.clusters().ClusterIdOf(1), kInvalidProfileId);
  EXPECT_TRUE(pipeline.clusters().ClusterOf(1).members.empty());
  EXPECT_EQ(pipeline.clusters().ClusterIdOf(0), 0u);
  EXPECT_EQ(pipeline.clusters().ClusterIdOf(2), 0u);
  // Idempotent: deleting a dead id again is a no-op.
  pipeline.Delete({1});
  EXPECT_TRUE(pipeline.clusters().IsDeleted(1));

  // Correct 2 to unrelated content: its old matches dissolve.
  pipeline.Update({EntityProfile(2, 0, {{"n", "zeta omega"}})});
  Exhaust(pipeline, matcher);
  EXPECT_EQ(pipeline.clusters().ClusterIdOf(0), 0u);
  EXPECT_EQ(pipeline.clusters().ClusterIdOf(2), 2u);
  EXPECT_EQ(pipeline.clusters().ClusterSizeOf(0), 1u);

  // Correct 2 back: the (0, 2) comparison was retracted from the
  // executed filter, so it re-executes and the cluster re-forms.
  pipeline.Update({EntityProfile(2, 0, {{"n", "alpha beta gamma"}})});
  Exhaust(pipeline, matcher);
  EXPECT_EQ(pipeline.clusters().ClusterIdOf(0), 0u);
  EXPECT_EQ(pipeline.clusters().ClusterIdOf(2), 0u);
  EXPECT_EQ(pipeline.clusters().ClusterSizeOf(0), 2u);

  // Revive the deleted id via a correction: it re-enters as new
  // content and re-matches from scratch.
  pipeline.Update({EntityProfile(1, 0, {{"n", "alpha beta"}})});
  Exhaust(pipeline, matcher);
  EXPECT_FALSE(pipeline.clusters().IsDeleted(1));
  EXPECT_EQ(pipeline.clusters().ClusterIdOf(1), 0u);
  EXPECT_EQ(pipeline.clusters().ClusterSizeOf(0), 3u);
}

TEST(MutablePipelineTest, DeleteCorrectReplayIPcs) {
  RunDeleteCorrectReplayScenario(PierStrategy::kIPcs);
}
TEST(MutablePipelineTest, DeleteCorrectReplayIPbs) {
  RunDeleteCorrectReplayScenario(PierStrategy::kIPbs);
}
TEST(MutablePipelineTest, DeleteCorrectReplayIPes) {
  RunDeleteCorrectReplayScenario(PierStrategy::kIPes);
}
TEST(MutablePipelineTest, DeleteCorrectReplaySperSk) {
  // The frontier strategies must honor retraction too: SPER-SK drops
  // retracted pairs from its reservoir (on this tiny input its exact
  // enumeration path makes the run deterministic).
  RunDeleteCorrectReplayScenario(PierStrategy::kSperSk);
}
TEST(MutablePipelineTest, DeleteCorrectReplayFbPcs) {
  RunDeleteCorrectReplayScenario(PierStrategy::kFbPcs);
}

TEST(MutablePipelineTest, MutationMetrics) {
  obs::MetricsRegistry registry;
  PierOptions options;
  options.kind = DatasetKind::kDirty;
  options.mutable_stream = true;
  options.metrics = &registry;
  PierPipeline pipeline(options);
  const JaccardMatcher matcher(0.5);
  pipeline.Ingest({EntityProfile(0, 0, {{"n", "alpha beta"}}),
                   EntityProfile(1, 0, {{"n", "alpha beta"}}),
                   EntityProfile(2, 0, {{"n", "alpha beta"}})});
  // Delete before draining: the pending comparisons that touch 2 are
  // retracted (in the prioritizer or, if already emitted, lazily at
  // EmitBatch), so the dead id never reaches the matcher.
  pipeline.Delete({2});
  pipeline.Delete({2});  // idempotent
  pipeline.NotifyStreamEnd();
  Exhaust(pipeline, matcher);
  pipeline.Update({EntityProfile(1, 0, {{"n", "gamma delta"}})});
  Exhaust(pipeline, matcher);
  EXPECT_EQ(registry.GetCounter("pipeline.profiles_deleted")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("pipeline.profiles_updated")->Value(), 1u);
  EXPECT_EQ(pipeline.clusters().ClusterIdOf(1), 1u);
  EXPECT_EQ(pipeline.clusters().ClusterSizeOf(0), 1u);
}

TEST(MutablePipelineTest, MutationsRejectedWhenNotEnabled) {
  PierOptions options;
  options.kind = DatasetKind::kDirty;
  ASSERT_FALSE(options.mutable_stream);
  PierPipeline pipeline(options);
  pipeline.Ingest({EntityProfile(0, 0, {{"n", "alpha beta"}})});
  EXPECT_DEATH(pipeline.Delete({0}), "mutable");
}

// Randomized add/delete/correct interleavings against a from-scratch
// oracle: whatever order the mutations arrived in, the final clusters
// must equal those of a fresh pipeline fed the end-state stream --
// surviving records with their final content, deleted records replaced
// by empty placeholders (ids must stay dense; a placeholder has no
// tokens, so it blocks with nothing and stays a singleton).
TEST(MutablePipelineTest, RandomizedInterleavingsMatchFromScratchOracle) {
  CensusOptions data_options;
  data_options.num_records = 160;
  const Dataset d = GenerateCensus(data_options);
  const JaccardMatcher matcher(0.4);
  const PierOptions options = MutableEquivalenceOptions(d.kind);
  std::mt19937 rng(20260807);

  PierPipeline pipeline(options);
  ParallelMatchExecutor executor(&matcher, 1, nullptr);
  std::vector<EntityProfile> current = d.profiles;  // content by id
  std::set<ProfileId> deleted;
  size_t ingested = 0;
  for (const auto& inc : SplitIntoIncrements(d, 16)) {
    std::vector<EntityProfile> profiles(
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.end));
    pipeline.Ingest(std::move(profiles));
    ingested = inc.end;
    // Partially drain so mutations hit mid-flight prioritizer state
    // (pending comparisons, executed-filter entries, cluster edges).
    const std::vector<Comparison> batch = pipeline.EmitBatch(64);
    if (!batch.empty()) {
      const std::vector<MatchVerdict> verdicts =
          executor.ExecuteVerdicts(batch, pipeline.profiles());
      for (size_t i = 0; i < batch.size(); ++i) {
        if (verdicts[i].is_match) {
          pipeline.RecordMatch(batch[i].x, batch[i].y);
        }
      }
    }
    for (int m = 0; m < 3; ++m) {
      const ProfileId id = static_cast<ProfileId>(rng() % ingested);
      switch (rng() % 3) {
        case 0:
          pipeline.Delete({id});  // idempotent on already-dead ids
          deleted.insert(id);
          break;
        case 1: {
          // Correction: splice in another record's attributes (which
          // may revive a previously deleted id).
          EntityProfile replacement =
              d.profiles[(id * 7 + 13) % d.profiles.size()];
          replacement.id = id;
          current[id] = replacement;
          deleted.erase(id);
          pipeline.Update({replacement});
          break;
        }
        default: {
          // Correction back to the original content.
          EntityProfile original = d.profiles[id];
          current[id] = original;
          deleted.erase(id);
          pipeline.Update({std::move(original)});
          break;
        }
      }
    }
  }
  ASSERT_FALSE(deleted.empty());
  pipeline.NotifyStreamEnd();
  Exhaust(pipeline, matcher);

  // From-scratch oracle over the end-state stream.
  PierPipeline oracle(options);
  std::vector<EntityProfile> stream;
  stream.reserve(d.profiles.size());
  for (ProfileId id = 0; id < d.profiles.size(); ++id) {
    if (deleted.count(id) != 0) {
      stream.push_back(EntityProfile(id, d.profiles[id].source, {}));
    } else {
      stream.push_back(current[id]);
    }
  }
  oracle.Ingest(std::move(stream));
  oracle.NotifyStreamEnd();
  Exhaust(oracle, matcher);

  for (ProfileId id = 0; id < d.profiles.size(); ++id) {
    if (deleted.count(id) != 0) {
      EXPECT_TRUE(pipeline.clusters().IsDeleted(id)) << "id=" << id;
      EXPECT_EQ(pipeline.clusters().ClusterIdOf(id), kInvalidProfileId);
    } else {
      EXPECT_EQ(pipeline.clusters().ClusterIdOf(id),
                oracle.clusters().ClusterIdOf(id))
          << "id=" << id;
      EXPECT_EQ(pipeline.clusters().ClusterOf(id).members,
                oracle.clusters().ClusterOf(id).members)
          << "id=" << id;
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded delete-then-replay equivalence (the tentpole oracle)

struct StreamOp {
  enum Kind { kIngest, kDelete, kUpdate } kind = kIngest;
  std::vector<EntityProfile> profiles;  // kIngest / kUpdate
  std::vector<ProfileId> ids;           // kDelete
};

// Builds a deterministic interleaved script of ingests, deletes, and
// corrections over `d`, and reports the end state: which ids are
// deleted at the end, and each survivor's final content.
std::vector<StreamOp> BuildMutationScript(
    const Dataset& d, size_t num_increments,
    std::set<ProfileId>* final_deleted,
    std::vector<EntityProfile>* final_content) {
  std::mt19937 rng(777);
  std::vector<StreamOp> ops;
  *final_content = d.profiles;
  final_deleted->clear();
  const auto increments = SplitIntoIncrements(d, num_increments);
  for (size_t c = 0; c < increments.size(); ++c) {
    StreamOp ingest;
    ingest.kind = StreamOp::kIngest;
    ingest.profiles.assign(
        d.profiles.begin() + static_cast<ptrdiff_t>(increments[c].begin),
        d.profiles.begin() + static_cast<ptrdiff_t>(increments[c].end));
    ops.push_back(std::move(ingest));
    const size_t ingested = increments[c].end;
    if (c == 0) continue;  // mutate only ids from earlier increments
    for (int m = 0; m < 2; ++m) {
      const ProfileId id = static_cast<ProfileId>(rng() % ingested);
      if (rng() % 2 == 0) {
        StreamOp op;
        op.kind = StreamOp::kDelete;
        op.ids = {id};
        ops.push_back(std::move(op));
        final_deleted->insert(id);
      } else {
        EntityProfile replacement =
            d.profiles[(id * 11 + 3) % d.profiles.size()];
        replacement.id = id;
        (*final_content)[id] = replacement;
        final_deleted->erase(id);
        StreamOp op;
        op.kind = StreamOp::kUpdate;
        op.profiles = {std::move(replacement)};
        ops.push_back(std::move(op));
      }
    }
  }
  return ops;
}

void ApplyOps(ShardedPipeline& pipeline, const std::vector<StreamOp>& ops,
              size_t begin) {
  for (size_t i = begin; i < ops.size(); ++i) {
    const StreamOp& op = ops[i];
    switch (op.kind) {
      case StreamOp::kIngest:
        ASSERT_TRUE(pipeline.Ingest(op.profiles)) << "op " << i;
        break;
      case StreamOp::kDelete:
        ASSERT_TRUE(pipeline.Delete(op.ids)) << "op " << i;
        break;
      case StreamOp::kUpdate:
        ASSERT_TRUE(pipeline.Update(op.profiles)) << "op " << i;
        break;
    }
  }
}

ShardedOptions MutableShardedOptions(DatasetKind kind, size_t shard_count) {
  ShardedOptions options;
  options.pipeline = MutableEquivalenceOptions(kind);
  options.shard_count = shard_count;
  options.queue_capacity = 4;  // small: exercises backpressure
  return options;
}

TEST(MutableShardedTest, DeleteThenReplayEquivalenceAcrossShardCounts) {
  CensusOptions data_options;
  data_options.num_records = 220;
  const Dataset d = GenerateCensus(data_options);
  const JaccardMatcher matcher(0.4);

  std::set<ProfileId> deleted;
  std::vector<EntityProfile> final_content;
  const std::vector<StreamOp> ops =
      BuildMutationScript(d, 11, &deleted, &final_content);
  ASSERT_FALSE(deleted.empty());

  // The oracle: a run whose stream never contained the deleted
  // records (placeholders keep ids dense) and always carried the
  // corrected content.
  std::map<ProfileId, ProfileId> expected;
  {
    ShardedPipeline oracle(MutableShardedOptions(d.kind, 1), &matcher,
                           [](ProfileId, ProfileId) {});
    std::vector<EntityProfile> stream;
    for (ProfileId id = 0; id < d.profiles.size(); ++id) {
      if (deleted.count(id) != 0) {
        stream.push_back(EntityProfile(id, d.profiles[id].source, {}));
      } else {
        stream.push_back(final_content[id]);
      }
    }
    ASSERT_TRUE(oracle.Ingest(std::move(stream)));
    oracle.NotifyStreamEnd();
    oracle.Drain();
    for (ProfileId id = 0; id < d.profiles.size(); ++id) {
      expected[id] = oracle.ClusterIdOf(id);
    }
  }

  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedPipeline pipeline(MutableShardedOptions(d.kind, shards), &matcher,
                             [](ProfileId, ProfileId) {});
    ApplyOps(pipeline, ops, 0);
    pipeline.NotifyStreamEnd();
    pipeline.Drain();
    EXPECT_EQ(pipeline.clusters().universe_size(), d.profiles.size());
    for (ProfileId id = 0; id < d.profiles.size(); ++id) {
      if (deleted.count(id) != 0) {
        EXPECT_TRUE(pipeline.clusters().IsDeleted(id)) << "id=" << id;
        EXPECT_EQ(pipeline.ClusterIdOf(id), kInvalidProfileId) << "id=" << id;
      } else {
        EXPECT_EQ(pipeline.ClusterIdOf(id), expected[id]) << "id=" << id;
      }
    }
  }
}

// Checkpoint/resume with mutations, on the counting-filter path: the
// snapshot must carry the counting filters and pair registries
// bit-exactly, so a resumed run converges to the same clusters as the
// uninterrupted one.
TEST(MutableShardedTest, CheckpointResumeWithMutationsMatchesUninterrupted) {
  CensusOptions data_options;
  data_options.num_records = 150;
  const Dataset d = GenerateCensus(data_options);
  const JaccardMatcher matcher(0.4);
  constexpr size_t kShards = 2;

  std::set<ProfileId> deleted;
  std::vector<EntityProfile> final_content;
  const std::vector<StreamOp> ops =
      BuildMutationScript(d, 8, &deleted, &final_content);

  auto make_options = [&] {
    ShardedOptions options = MutableShardedOptions(d.kind, kShards);
    // Exercise the counting-filter snapshot sections (the default
    // mutable-stream configuration), not the exact-set ablation.
    options.pipeline.exact_executed_filter = false;
    return options;
  };

  // Uninterrupted reference.
  std::map<ProfileId, ProfileId> expected;
  {
    ShardedPipeline pipeline(make_options(), &matcher,
                             [](ProfileId, ProfileId) {});
    ApplyOps(pipeline, ops, 0);
    pipeline.NotifyStreamEnd();
    pipeline.Drain();
    for (ProfileId id = 0; id < d.profiles.size(); ++id) {
      expected[id] = pipeline.ClusterIdOf(id);
    }
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() / "pier_mutable_resume_test")
          .string();
  std::filesystem::remove_all(dir);
  {
    ShardedPipeline pipeline(make_options(), &matcher,
                             [](ProfileId, ProfileId) {});
    pipeline.EnableCheckpoints(dir, /*every=*/3, /*keep=*/2);
    // Apply a prefix that includes deletes and corrections, then die.
    ApplyOps(pipeline, ops, 0);
  }
  auto latest = persist::CheckpointManager::FindLatest(dir);
  ASSERT_TRUE(latest.has_value());

  ShardedPipeline resumed(make_options(), &matcher,
                          [](ProfileId, ProfileId) {});
  std::ifstream in(*latest, std::ios::binary);
  std::string error;
  ASSERT_TRUE(resumed.RestoreFromSnapshot(in, &error)) << error;
  // Every op (ingest, delete, update) bumps the ingest counter, so the
  // counter doubles as the replay position in the op log.
  const uint64_t applied = resumed.ingests();
  ASSERT_GT(applied, 0u);
  ASSERT_LE(applied, ops.size());
  ApplyOps(resumed, ops, applied);
  resumed.NotifyStreamEnd();
  resumed.Drain();

  for (ProfileId id = 0; id < d.profiles.size(); ++id) {
    EXPECT_EQ(resumed.ClusterIdOf(id), expected[id]) << "id=" << id;
    EXPECT_EQ(resumed.clusters().IsDeleted(id), deleted.count(id) != 0)
        << "id=" << id;
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Concurrency (TSan): deletes and corrections racing cluster queries

TEST(MutableClusterIndexTest, ConcurrentRemoveReviveVsQueryStress) {
  serve::ClusterIndex index;
  index.EnableRetraction();
  index.TrackUpTo(256);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    uint64_t checksum = 0;
    while (!stop.load()) {
      for (ProfileId id = 0; id < 256; id += 3) {
        checksum += index.ClusterIdOf(id) == kInvalidProfileId
                        ? 1
                        : index.ClusterIdOf(id);
        checksum += index.ClusterOf(id).members.size();
        checksum += index.IsDeleted(id) ? 1 : 0;
        checksum += index.ClusterSizeOf(id);
      }
    }
    EXPECT_GE(checksum, 0u);
  });
  std::mt19937 rng(99);
  std::set<ProfileId> dead;
  for (int wave = 0; wave < 60; ++wave) {
    for (int i = 0; i < 8; ++i) {
      const ProfileId a = static_cast<ProfileId>(rng() % 256);
      const ProfileId b = static_cast<ProfileId>(rng() % 256);
      if (a == b || dead.count(a) != 0 || dead.count(b) != 0) continue;
      index.AddMatch(a, b);
    }
    for (int i = 0; i < 3; ++i) {
      const ProfileId id = static_cast<ProfileId>(rng() % 256);
      if (dead.count(id) != 0) continue;
      if (index.RemoveProfile(id)) dead.insert(id);
    }
    if (wave % 4 == 0 && !dead.empty()) {
      const ProfileId id = *dead.begin();
      index.ReviveAsSingleton(id);
      dead.erase(id);
    }
  }
  stop.store(true);
  reader.join();
  // Quiescent consistency: dead ids report absence, live ids resolve
  // to a live canonical member no larger than themselves.
  for (ProfileId id = 0; id < 256; ++id) {
    if (dead.count(id) != 0) {
      EXPECT_TRUE(index.IsDeleted(id));
      EXPECT_EQ(index.ClusterIdOf(id), kInvalidProfileId);
      EXPECT_TRUE(index.ClusterOf(id).members.empty());
    } else {
      const ProfileId root = index.ClusterIdOf(id);
      EXPECT_LE(root, id);
      EXPECT_EQ(dead.count(root), 0u);
    }
  }
}

TEST(MutableShardedTest, ConcurrentMutationsVsClusterQueries) {
  CensusOptions data_options;
  data_options.num_records = 240;
  const Dataset d = GenerateCensus(data_options);
  const JaccardMatcher matcher(0.4);
  ShardedOptions options;
  options.pipeline.kind = d.kind;
  options.pipeline.strategy = PierStrategy::kIPes;
  options.pipeline.mutable_stream = true;
  options.shard_count = 2;
  options.queue_capacity = 2;
  ShardedPipeline pipeline(options, &matcher, [](ProfileId, ProfileId) {});

  std::atomic<bool> stop_queries{false};
  std::thread querier([&] {
    uint64_t checksum = 0;
    while (!stop_queries.load()) {
      const size_t universe = pipeline.clusters().universe_size();
      for (ProfileId id = 0; id < universe; id += 5) {
        const ProfileId root = pipeline.ClusterIdOf(id);
        checksum += root == kInvalidProfileId ? 1 : root;
        checksum += pipeline.ClusterOf(id).members.size();
        checksum += pipeline.clusters().IsDeleted(id) ? 1 : 0;
      }
    }
    EXPECT_GE(checksum, 0u);
  });

  std::set<ProfileId> deleted;
  const auto increments = SplitIntoIncrements(d, 12);
  for (size_t c = 0; c < increments.size(); ++c) {
    std::vector<EntityProfile> profiles(
        d.profiles.begin() + static_cast<ptrdiff_t>(increments[c].begin),
        d.profiles.begin() + static_cast<ptrdiff_t>(increments[c].end));
    ASSERT_TRUE(pipeline.Ingest(std::move(profiles)));
    if (c == 0) continue;
    // Delete and correct mid-stream while the workers are busy and
    // the querier hammers the serving index.
    const ProfileId victim = static_cast<ProfileId>(increments[c - 1].begin);
    ASSERT_TRUE(pipeline.Delete({victim}));
    deleted.insert(victim);
    if (c % 2 == 0) {
      const ProfileId corrected =
          static_cast<ProfileId>(increments[c - 1].begin + 1);
      EntityProfile replacement =
          d.profiles[(corrected + 29) % d.profiles.size()];
      replacement.id = corrected;
      ASSERT_TRUE(pipeline.Update({std::move(replacement)}));
      deleted.erase(corrected);
    }
  }
  pipeline.NotifyStreamEnd();
  pipeline.Drain();
  stop_queries.store(true);
  querier.join();

  EXPECT_EQ(pipeline.clusters().universe_size(), d.profiles.size());
  for (const ProfileId id : deleted) {
    EXPECT_TRUE(pipeline.clusters().IsDeleted(id)) << "id=" << id;
    EXPECT_EQ(pipeline.ClusterIdOf(id), kInvalidProfileId) << "id=" << id;
  }
}

}  // namespace
}  // namespace pier
