// Tests for the observability layer (src/obs/): metric primitives,
// registry snapshots, JSON-lines/CSV round trips, the ScopedTimer, and
// the end-to-end reconciliation contract -- an instrumented simulator
// run's stage counters must match the RunResult totals exactly.
//
// All fixtures are named Obs* so the TSan CI job can gate the
// concurrency surface with a single -R filter.

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "obs/metrics.h"
#include "obs/metrics_io.h"
#include "obs/scoped_timer.h"
#include "similarity/matcher.h"
#include "stream/pier_adapter.h"
#include "stream/stream_simulator.h"

namespace pier {
namespace {

using obs::MetricSample;
using obs::MetricsRegistry;

#ifndef PIER_OBS_DISABLED

TEST(ObsMetricsTest, CounterAccumulates) {
  MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("test.counter");
  ASSERT_NE(c, nullptr);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(ObsMetricsTest, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("same.name");
  obs::Counter* b = registry.GetCounter("same.name");
  EXPECT_EQ(a, b);
  // Same name, different type: rejected with null instead of aliasing.
  EXPECT_EQ(registry.GetGauge("same.name"), nullptr);
  EXPECT_EQ(registry.GetHistogram("same.name"), nullptr);
}

TEST(ObsMetricsTest, GaugeLastWriteWins) {
  MetricsRegistry registry;
  obs::Gauge* g = registry.GetGauge("test.gauge");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_DOUBLE_EQ(g->Value(), -2.25);
}

TEST(ObsMetricsTest, HistogramStatsAndQuantiles) {
  MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("test.hist");
  for (uint64_t v = 1; v <= 100; ++v) h->Record(v);
  EXPECT_EQ(h->Count(), 100u);
  EXPECT_EQ(h->Sum(), 5050u);
  EXPECT_EQ(h->Min(), 1u);
  EXPECT_EQ(h->Max(), 100u);
  EXPECT_DOUBLE_EQ(h->Mean(), 50.5);
  // Exponential buckets: quantile estimates are upper bucket bounds,
  // i.e. within one power of two of the true quantile.
  EXPECT_GE(h->Quantile(0.5), 50u);
  EXPECT_LE(h->Quantile(0.5), 127u);
  EXPECT_GE(h->Quantile(1.0), 100u);
  EXPECT_EQ(h->Quantile(0.0), 1u);
}

TEST(ObsMetricsTest, HistogramEmpty) {
  MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("test.empty");
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_EQ(h->Min(), 0u);
  EXPECT_EQ(h->Max(), 0u);
  EXPECT_DOUBLE_EQ(h->Mean(), 0.0);
  EXPECT_EQ(h->Quantile(0.9), 0u);
}

TEST(ObsMetricsTest, NullSafeHelpers) {
  obs::CounterAdd(nullptr);
  obs::GaugeSet(nullptr, 1.0);
  obs::HistogramRecord(nullptr, 1);
  { const obs::ScopedTimer timer(nullptr); }
}

TEST(ObsMetricsTest, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("z.last")->Add(1);
  registry.GetGauge("a.first")->Set(2.0);
  registry.GetHistogram("m.middle")->Record(3);
  const std::vector<MetricSample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "a.first");
  EXPECT_EQ(snapshot[1].name, "m.middle");
  EXPECT_EQ(snapshot[2].name, "z.last");
  EXPECT_EQ(snapshot[0].type, MetricSample::Type::kGauge);
  EXPECT_DOUBLE_EQ(snapshot[0].value, 2.0);
  EXPECT_EQ(snapshot[1].count, 1u);
  EXPECT_DOUBLE_EQ(snapshot[2].value, 1.0);
}

TEST(ObsMetricsTest, ScopedTimerRecordsElapsed) {
  MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("span.ns");
  {
    const obs::ScopedTimer timer(h);
    // Any work; the span is >= 0 ns by construction.
  }
  EXPECT_EQ(h->Count(), 1u);
}

// The TSan-gated surface: concurrent writers on every primitive.
TEST(ObsConcurrencyTest, ConcurrentUpdatesAreExact) {
  MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("hammer.counter");
  obs::Gauge* gauge = registry.GetGauge("hammer.gauge");
  obs::Histogram* hist = registry.GetHistogram("hammer.hist");
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Add();
        gauge->Set(static_cast<double>(t));
        hist->Record(i & 1023);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(hist->Count(), kThreads * kPerThread);
  EXPECT_EQ(hist->Max(), 1023u);
  const double g = gauge->Value();
  EXPECT_GE(g, 0.0);
  EXPECT_LT(g, kThreads);
}

TEST(ObsConcurrencyTest, ConcurrentRegistrationYieldsOneMetric) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("contended.name")->Add();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("contended.name")->Value(), 4000u);
  EXPECT_EQ(registry.Snapshot().size(), 1u);
}

TEST(ObsIoTest, JsonLinesRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("rt.counter")->Add(123);
  registry.GetGauge("rt.gauge")->Set(0.125);
  obs::Histogram* h = registry.GetHistogram("rt.hist");
  for (uint64_t v : {3u, 9u, 200u}) h->Record(v);

  std::ostringstream out;
  obs::WriteJsonLines(out, 2.5, registry.Snapshot());

  std::istringstream in(out.str());
  std::string line;
  std::vector<MetricSample> parsed;
  double t = 0.0;
  while (std::getline(in, line)) {
    MetricSample sample;
    ASSERT_TRUE(obs::ParseJsonLine(line, &t, &sample)) << line;
    EXPECT_DOUBLE_EQ(t, 2.5);
    parsed.push_back(sample);
  }
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].name, "rt.counter");
  EXPECT_EQ(parsed[0].type, MetricSample::Type::kCounter);
  EXPECT_DOUBLE_EQ(parsed[0].value, 123.0);
  EXPECT_EQ(parsed[1].name, "rt.gauge");
  EXPECT_DOUBLE_EQ(parsed[1].value, 0.125);
  EXPECT_EQ(parsed[2].name, "rt.hist");
  EXPECT_EQ(parsed[2].type, MetricSample::Type::kHistogram);
  EXPECT_EQ(parsed[2].count, 3u);
  EXPECT_EQ(parsed[2].sum, 212u);
  EXPECT_EQ(parsed[2].min, 3u);
  EXPECT_EQ(parsed[2].max, 200u);
}

TEST(ObsIoTest, ParseRejectsGarbage) {
  MetricSample sample;
  double t = 0.0;
  EXPECT_FALSE(obs::ParseJsonLine("", &t, &sample));
  EXPECT_FALSE(obs::ParseJsonLine("not json", &t, &sample));
  EXPECT_FALSE(obs::ParseJsonLine("{\"t\":1.0,\"name\":\"x\"}", &t, &sample));
  EXPECT_FALSE(obs::ParseJsonLine(
      "{\"t\":1.0,\"name\":\"x\",\"type\":\"mystery\",\"value\":1}", &t,
      &sample));
}

TEST(ObsIoTest, CsvHasHeaderAndRows) {
  MetricsRegistry registry;
  registry.GetCounter("csv.counter")->Add(7);
  registry.GetHistogram("csv.hist")->Record(8);
  std::ostringstream out;
  obs::WriteCsvHeader(out);
  obs::WriteCsv(out, 1.0, registry.Snapshot());
  const std::string text = out.str();
  EXPECT_NE(text.find("t,name,type,value,count,sum,min,max,p50,p90,p99"),
            std::string::npos);
  EXPECT_NE(text.find("csv.counter,counter,7"), std::string::npos);
  EXPECT_NE(text.find("csv.hist,histogram"), std::string::npos);
}

// End-to-end reconciliation: the `sim.*` counters of an instrumented
// run, as read back from the emitted JSON-lines snapshots, must match
// the RunResult totals exactly (the acceptance contract for shipping
// observability always-on).
TEST(ObsSimulatorTest, SnapshotCountersReconcileWithRunResult) {
  BibliographicOptions data_options;
  data_options.source0_count = 120;
  data_options.source1_count = 100;
  data_options.seed = 11;
  const Dataset dataset = GenerateBibliographic(data_options);

  MetricsRegistry registry;
  std::ostringstream snapshots;
  SimulatorOptions sim_options;
  sim_options.num_increments = 10;
  sim_options.increments_per_second = 0.0;
  sim_options.cost_mode = CostMeter::Mode::kModeled;
  sim_options.metrics = &registry;
  sim_options.metrics_out = &snapshots;
  // Modeled virtual time is tiny; a microsecond interval guarantees
  // several periodic snapshots before the final one.
  sim_options.metrics_interval_s = 1e-6;

  PierOptions options;
  options.kind = dataset.kind;
  options.strategy = PierStrategy::kIPes;
  options.metrics = &registry;

  const StreamSimulator simulator(&dataset, sim_options);
  PierAdapter algorithm(options);
  const JaccardMatcher matcher(0.5);
  const RunResult result = simulator.Run(algorithm, matcher);
  ASSERT_GT(result.comparisons_executed, 0u);

  // Parse every line; keep the last value per metric (the final
  // snapshot supersedes the periodic ones).
  std::istringstream in(snapshots.str());
  std::string line;
  size_t lines = 0;
  double t = 0.0;
  std::map<std::string, MetricSample> last;
  while (std::getline(in, line)) {
    MetricSample sample;
    ASSERT_TRUE(obs::ParseJsonLine(line, &t, &sample)) << line;
    last[sample.name] = sample;
    ++lines;
  }
  // At least one periodic and one final snapshot.
  ASSERT_GT(lines, last.size());

  ASSERT_TRUE(last.count("sim.comparisons_executed"));
  EXPECT_EQ(static_cast<uint64_t>(last["sim.comparisons_executed"].value),
            result.comparisons_executed);
  ASSERT_TRUE(last.count("sim.matches_found"));
  EXPECT_EQ(static_cast<uint64_t>(last["sim.matches_found"].value),
            result.matches_found);
  ASSERT_TRUE(last.count("sim.matcher_positives"));
  EXPECT_EQ(static_cast<uint64_t>(last["sim.matcher_positives"].value),
            result.matcher_positives);
  ASSERT_TRUE(last.count("sim.increments_delivered"));
  EXPECT_EQ(static_cast<uint64_t>(last["sim.increments_delivered"].value),
            sim_options.num_increments);
  ASSERT_TRUE(last.count("sim.stalled_ticks"));
  EXPECT_EQ(static_cast<uint64_t>(last["sim.stalled_ticks"].value),
            result.stalled_ticks);

  // The executor saw exactly the comparisons the simulator accounted.
  ASSERT_TRUE(last.count("executor.comparisons"));
  EXPECT_EQ(static_cast<uint64_t>(last["executor.comparisons"].value),
            result.comparisons_executed);

  // Pipeline-side flow: everything the simulator executed was emitted
  // by the pipeline (the pipeline may emit trailing comparisons the
  // budgeted simulator never matched, so >=).
  ASSERT_TRUE(last.count("pipeline.comparisons_emitted"));
  EXPECT_GE(static_cast<uint64_t>(last["pipeline.comparisons_emitted"].value),
            result.comparisons_executed);
  ASSERT_TRUE(last.count("pipeline.profiles_ingested"));
  EXPECT_EQ(static_cast<uint64_t>(last["pipeline.profiles_ingested"].value),
            dataset.profiles.size());

  // findK() telemetry is live.
  ASSERT_TRUE(last.count("findk.k"));
  EXPECT_GT(last["findk.k"].value, 0.0);
}

// metrics_out alone (no caller registry) must still stream snapshots,
// via the run-local registry.
TEST(ObsSimulatorTest, MetricsOutWithoutRegistryUsesLocalOne) {
  BibliographicOptions data_options;
  data_options.source0_count = 60;
  data_options.source1_count = 50;
  data_options.seed = 3;
  const Dataset dataset = GenerateBibliographic(data_options);

  std::ostringstream snapshots;
  SimulatorOptions sim_options;
  sim_options.num_increments = 5;
  sim_options.cost_mode = CostMeter::Mode::kModeled;
  sim_options.metrics_out = &snapshots;

  PierOptions options;
  options.kind = dataset.kind;
  const StreamSimulator simulator(&dataset, sim_options);
  PierAdapter algorithm(options);
  const JaccardMatcher matcher(0.5);
  const RunResult result = simulator.Run(algorithm, matcher);

  std::istringstream in(snapshots.str());
  std::string line;
  bool found_comparisons = false;
  double t = 0.0;
  while (std::getline(in, line)) {
    MetricSample sample;
    ASSERT_TRUE(obs::ParseJsonLine(line, &t, &sample)) << line;
    if (sample.name == "sim.comparisons_executed") {
      found_comparisons = true;
      EXPECT_EQ(static_cast<uint64_t>(sample.value),
                result.comparisons_executed);
    }
  }
  EXPECT_TRUE(found_comparisons);
}

#else  // PIER_OBS_DISABLED

TEST(ObsMetricsTest, DisabledBuildCompilesToNoOps) {
  MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("test.counter");
  c->Add(42);
  EXPECT_EQ(c->Value(), 0u);
  obs::Histogram* h = registry.GetHistogram("test.hist");
  h->Record(7);
  EXPECT_EQ(h->Count(), 0u);
}

#endif  // PIER_OBS_DISABLED

}  // namespace
}  // namespace pier
