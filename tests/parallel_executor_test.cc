// ParallelMatchExecutor: the verdict stream must be *bit-identical* to
// the sequential matcher's, in emission order, for every thread count
// (the determinism guarantee the PC-over-time curves rely on). Also
// covers the executor-backed StreamSimulator path and exception
// propagation from matcher failures.

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pier_pipeline.h"
#include "datagen/generators.h"
#include "similarity/matcher.h"
#include "similarity/parallel_executor.h"
#include "stream/pier_adapter.h"
#include "stream/stream_simulator.h"

namespace pier {
namespace {

// Pipeline-emitted comparisons over a seeded dbpedia-like dataset
// (long ragged profiles — the expensive-matcher workload).
struct Workload {
  Dataset dataset;
  std::unique_ptr<PierPipeline> pipeline;
  std::vector<Comparison> comparisons;
};

Workload MakeWorkload(size_t target_comparisons) {
  Workload w;
  DbpediaOptions data_options;
  data_options.source0_count = 300;
  data_options.source1_count = 400;
  w.dataset = GenerateDbpedia(data_options);

  PierOptions options;
  options.kind = w.dataset.kind;
  options.strategy = PierStrategy::kIPes;
  w.pipeline = std::make_unique<PierPipeline>(options);
  std::vector<EntityProfile> all = w.dataset.profiles;
  w.pipeline->Ingest(std::move(all));
  w.pipeline->NotifyStreamEnd();
  while (w.comparisons.size() < target_comparisons) {
    const auto batch = w.pipeline->EmitBatch(512);
    if (batch.empty()) break;
    w.comparisons.insert(w.comparisons.end(), batch.begin(), batch.end());
  }
  return w;
}

std::vector<MatchVerdict> SequentialReference(
    const Matcher& matcher, const std::vector<Comparison>& batch,
    const ProfileStore& profiles) {
  std::vector<MatchVerdict> verdicts(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const EntityProfile& a = profiles.Get(batch[i].x);
    const EntityProfile& b = profiles.Get(batch[i].y);
    verdicts[i].similarity = matcher.Similarity(a, b);
    verdicts[i].is_match = matcher.Matches(a, b);
    verdicts[i].cost_units = matcher.CostUnits(a, b);
  }
  return verdicts;
}

TEST(ParallelExecutorTest, VerdictStreamMatchesSequentialAtEveryThreadCount) {
  const Workload w = MakeWorkload(3000);
  ASSERT_GT(w.comparisons.size(), 500u);

  const EditDistanceMatcher matcher(0.75, /*max_text_length=*/256);
  const std::vector<MatchVerdict> reference =
      SequentialReference(matcher, w.comparisons, w.pipeline->profiles());

  for (const size_t threads : {1u, 2u, 8u}) {
    const ParallelMatchExecutor executor(&matcher, threads);
    const std::vector<MatchVerdict> verdicts =
        executor.Execute(w.comparisons, w.pipeline->profiles());
    ASSERT_EQ(verdicts.size(), reference.size()) << threads << " threads";
    for (size_t i = 0; i < verdicts.size(); ++i) {
      ASSERT_EQ(verdicts[i].is_match, reference[i].is_match)
          << "i=" << i << " threads=" << threads;
      ASSERT_EQ(verdicts[i].similarity, reference[i].similarity)
          << "i=" << i << " threads=" << threads;
      ASSERT_EQ(verdicts[i].cost_units, reference[i].cost_units)
          << "i=" << i << " threads=" << threads;
    }
  }
}

// The verdict-only kernel path must reproduce the sequential
// reference's is_match / cost_units streams exactly, for every matcher
// family, threshold, and thread count (similarity is deliberately left
// 0.0 on this path).
TEST(ParallelExecutorTest, VerdictPathStreamIdenticalAcrossMatchers) {
  const Workload w = MakeWorkload(2000);
  ASSERT_GT(w.comparisons.size(), 500u);

  for (const char* name : {"JS", "ED", "COS"}) {
    for (const double threshold : {0.3, 0.5, 0.8}) {
      const std::unique_ptr<Matcher> matcher =
          std::string(name) == "ED"
              ? std::make_unique<EditDistanceMatcher>(threshold,
                                                      /*max_text_length=*/256)
              : MakeMatcher(name, threshold);
      ASSERT_NE(matcher, nullptr);
      const std::vector<MatchVerdict> reference =
          SequentialReference(*matcher, w.comparisons, w.pipeline->profiles());
      for (const size_t threads : {1u, 2u, 8u}) {
        const ParallelMatchExecutor executor(matcher.get(), threads);
        const std::vector<MatchVerdict> verdicts =
            executor.ExecuteVerdicts(w.comparisons, w.pipeline->profiles());
        ASSERT_EQ(verdicts.size(), reference.size());
        for (size_t i = 0; i < verdicts.size(); ++i) {
          ASSERT_EQ(verdicts[i].is_match, reference[i].is_match)
              << name << " t=" << threshold << " threads=" << threads
              << " i=" << i;
          ASSERT_EQ(verdicts[i].cost_units, reference[i].cost_units)
              << name << " t=" << threshold << " threads=" << threads
              << " i=" << i;
          ASSERT_EQ(verdicts[i].similarity, 0.0)
              << name << " verdict path must not compute scores, i=" << i;
        }
      }
    }
  }
}

TEST(ParallelExecutorTest, EmptyBatch) {
  const JaccardMatcher matcher(0.5);
  const ParallelMatchExecutor executor(&matcher, 4);
  ProfileStore store;
  EXPECT_TRUE(executor.Execute(std::vector<Comparison>{}, store).empty());
}

TEST(ParallelExecutorTest, SmallBatchRunsInlineButIdentically) {
  const Workload w = MakeWorkload(40);
  const JaccardMatcher matcher(0.35);
  const auto reference =
      SequentialReference(matcher, w.comparisons, w.pipeline->profiles());
  const ParallelMatchExecutor executor(&matcher, 8);
  const auto verdicts = executor.Execute(w.comparisons, w.pipeline->profiles());
  ASSERT_EQ(verdicts.size(), reference.size());
  for (size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i].is_match, reference[i].is_match);
    EXPECT_EQ(verdicts[i].similarity, reference[i].similarity);
  }
  // Same inline shortcut on the verdict path.
  const auto inline_verdicts =
      executor.ExecuteVerdicts(w.comparisons, w.pipeline->profiles());
  ASSERT_EQ(inline_verdicts.size(), reference.size());
  for (size_t i = 0; i < inline_verdicts.size(); ++i) {
    EXPECT_EQ(inline_verdicts[i].is_match, reference[i].is_match);
  }
}

TEST(ParallelExecutorTest, EmptyBatchVerdictPath) {
  const JaccardMatcher matcher(0.5);
  const ParallelMatchExecutor executor(&matcher, 4);
  ProfileStore store;
  EXPECT_TRUE(
      executor.ExecuteVerdicts(std::vector<Comparison>{}, store).empty());
}

class ThrowingMatcher : public Matcher {
 public:
  ThrowingMatcher() : Matcher(0.5) {}
  double Similarity(const EntityProfile&, const EntityProfile&) const override {
    throw std::runtime_error("matcher failure");
  }
  uint64_t CostUnits(const EntityProfile&,
                     const EntityProfile&) const override {
    return 1;
  }
  const char* name() const override { return "THROW"; }
};

TEST(ParallelExecutorTest, PropagatesMatcherExceptions) {
  const Workload w = MakeWorkload(500);
  ASSERT_GT(w.comparisons.size(), 100u);
  const ThrowingMatcher matcher;
  const ParallelMatchExecutor executor(&matcher, 4);
  EXPECT_THROW(executor.Execute(w.comparisons, w.pipeline->profiles()),
               std::runtime_error);
}

// End-to-end determinism: a simulator run with the modeled cost meter
// must produce identical results (curve, counts, virtual time) for
// 1, 2, and 8 execution threads.
TEST(ParallelExecutorTest, SimulatorRunsAreThreadCountInvariant) {
  BibliographicOptions data_options;
  data_options.source0_count = 200;
  data_options.source1_count = 170;
  const Dataset dataset = GenerateBibliographic(data_options);

  const EditDistanceMatcher matcher(0.75, /*max_text_length=*/256);
  auto run = [&](size_t threads) {
    SimulatorOptions sim_options;
    sim_options.num_increments = 10;
    sim_options.cost_mode = CostMeter::Mode::kModeled;
    sim_options.execution_threads = threads;
    const StreamSimulator simulator(&dataset, sim_options);
    PierOptions options;
    options.kind = dataset.kind;
    options.strategy = PierStrategy::kIPes;
    PierAdapter algorithm(options);
    return simulator.Run(algorithm, matcher);
  };

  const RunResult reference = run(1);
  EXPECT_GT(reference.comparisons_executed, 0u);
  for (const size_t threads : {2u, 8u}) {
    const RunResult result = run(threads);
    EXPECT_EQ(result.comparisons_executed, reference.comparisons_executed);
    EXPECT_EQ(result.matches_found, reference.matches_found);
    EXPECT_EQ(result.matcher_positives, reference.matcher_positives);
    EXPECT_EQ(result.end_time, reference.end_time);
    ASSERT_EQ(result.curve.points().size(), reference.curve.points().size());
    for (size_t i = 0; i < result.curve.points().size(); ++i) {
      EXPECT_EQ(result.curve.points()[i].time,
                reference.curve.points()[i].time);
      EXPECT_EQ(result.curve.points()[i].comparisons,
                reference.curve.points()[i].comparisons);
      EXPECT_EQ(result.curve.points()[i].matches_found,
                reference.curve.points()[i].matches_found);
    }
  }
}

}  // namespace
}  // namespace pier
