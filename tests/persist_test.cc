// Tests for src/persist: CRC32C vectors, the framed snapshot container
// (round trip + exhaustive fault injection), per-component
// Snapshot/Restore round trips with byte-identical re-serialization,
// the atomic CheckpointManager, and the ApproxMemoryBytes gauges.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/block_collection.h"
#include "core/find_k.h"
#include "core/pier_pipeline.h"
#include "model/comparison.h"
#include "model/profile_store.h"
#include "model/token_dictionary.h"
#include "persist/checkpoint_manager.h"
#include "persist/crc32c.h"
#include "persist/snapshot.h"
#include "text/tokenizer.h"
#include "util/bloom_filter.h"
#include "util/bounded_priority_queue.h"
#include "util/moving_average.h"
#include "util/scalable_bloom_filter.h"
#include "util/serial.h"

namespace pier {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownVector) {
  // The canonical CRC32C check value (RFC 3720 appendix B.4).
  const std::string data = "123456789";
  EXPECT_EQ(persist::Crc32c(data.data(), data.size()), 0xE3069283u);
}

TEST(Crc32cTest, EmptyIsZero) {
  EXPECT_EQ(persist::Crc32c(nullptr, 0), 0u);
}

TEST(Crc32cTest, ChainingMatchesOneShot) {
  const std::string data = "progressive entity resolution";
  const uint32_t whole = persist::Crc32c(data.data(), data.size());
  uint32_t chained = 0;
  for (size_t split = 0; split <= data.size(); ++split) {
    chained = persist::Crc32c(data.data(), split, 0);
    chained = persist::Crc32c(data.data() + split, data.size() - split,
                              chained);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::string data = "some payload bytes";
  const uint32_t clean = persist::Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<char>(1 << bit);
      EXPECT_NE(persist::Crc32c(data.data(), data.size()), clean);
      data[i] ^= static_cast<char>(1 << bit);
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot container
// ---------------------------------------------------------------------------

std::string BuildSampleSnapshot() {
  persist::SnapshotBuilder builder;
  std::ostream& a = builder.AddSection("alpha");
  serial::WriteU64(a, 42);
  serial::WriteString(a, "hello");
  std::ostream& b = builder.AddSection("beta");
  serial::WriteF64(b, 2.5);
  return builder.Bytes();
}

TEST(SnapshotTest, RoundTrip) {
  const std::string bytes = BuildSampleSnapshot();
  std::istringstream in(bytes);
  persist::SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(reader.Parse(in, &error)) << error;
  EXPECT_EQ(reader.section_names(),
            (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_TRUE(reader.Has("alpha"));
  EXPECT_FALSE(reader.Has("gamma"));

  std::istringstream alpha;
  ASSERT_TRUE(reader.Open("alpha", &alpha, &error)) << error;
  uint64_t v = 0;
  std::string s;
  ASSERT_TRUE(serial::ReadU64(alpha, &v));
  ASSERT_TRUE(serial::ReadString(alpha, &s));
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(s, "hello");

  std::istringstream missing;
  EXPECT_FALSE(reader.Open("gamma", &missing, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SnapshotTest, EmptySnapshotRoundTrips) {
  persist::SnapshotBuilder builder;
  std::istringstream in(builder.Bytes());
  persist::SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(reader.Parse(in, &error)) << error;
  EXPECT_TRUE(reader.section_names().empty());
}

TEST(SnapshotTest, EveryByteCorruptionRejected) {
  const std::string clean = BuildSampleSnapshot();
  for (size_t i = 0; i < clean.size(); ++i) {
    std::string corrupt = clean;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    std::istringstream in(corrupt);
    persist::SnapshotReader reader;
    std::string error;
    EXPECT_FALSE(reader.Parse(in, &error)) << "flip at byte " << i;
    EXPECT_FALSE(error.empty()) << "flip at byte " << i;
  }
}

TEST(SnapshotTest, EveryTruncationRejected) {
  const std::string clean = BuildSampleSnapshot();
  for (size_t len = 0; len < clean.size(); ++len) {
    std::istringstream in(clean.substr(0, len));
    persist::SnapshotReader reader;
    std::string error;
    EXPECT_FALSE(reader.Parse(in, &error)) << "truncated to " << len;
    EXPECT_FALSE(error.empty()) << "truncated to " << len;
  }
}

TEST(SnapshotTest, TrailingGarbageRejected) {
  std::string bytes = BuildSampleSnapshot();
  bytes.push_back('\0');
  std::istringstream in(bytes);
  persist::SnapshotReader reader;
  std::string error;
  EXPECT_FALSE(reader.Parse(in, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(SnapshotTest, WrongMagicRejected) {
  std::string bytes = BuildSampleSnapshot();
  bytes[0] = 'X';
  std::istringstream in(bytes);
  persist::SnapshotReader reader;
  std::string error;
  EXPECT_FALSE(reader.Parse(in, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

// Hand-frames a snapshot with an arbitrary format version, following
// the documented layout (SnapshotBuilder always stamps the current
// version, so back/forward-compat tests need to build the file raw).
std::string FrameWithVersion(
    uint32_t version,
    const std::vector<std::pair<std::string, std::string>>& sections) {
  std::ostringstream header;
  serial::WriteU32(header, version);
  serial::WriteU32(header, static_cast<uint32_t>(sections.size()));
  for (const auto& [name, payload] : sections) {
    serial::WriteU16(header, static_cast<uint16_t>(name.size()));
    header.write(name.data(), static_cast<std::streamsize>(name.size()));
    serial::WriteU64(header, payload.size());
    serial::WriteU32(header, persist::Crc32c(payload));
  }
  const std::string header_bytes = std::move(header).str();
  std::ostringstream out;
  out.write(persist::kMagic, sizeof(persist::kMagic));
  out.write(header_bytes.data(),
            static_cast<std::streamsize>(header_bytes.size()));
  serial::WriteU32(out, persist::Crc32c(header_bytes));
  for (const auto& [name, payload] : sections) {
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }
  return std::move(out).str();
}

TEST(SnapshotTest, SupportedOlderVersionAccepted) {
  // v1 files (pre cluster-index sections) must stay loadable.
  std::ostringstream payload;
  serial::WriteU64(payload, 7);
  const std::string bytes = FrameWithVersion(
      persist::kMinSupportedFormatVersion, {{"alpha", payload.str()}});
  std::istringstream in(bytes);
  persist::SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(reader.Parse(in, &error)) << error;
  ASSERT_TRUE(reader.Has("alpha"));
  std::istringstream alpha;
  ASSERT_TRUE(reader.Open("alpha", &alpha, &error)) << error;
  uint64_t v = 0;
  ASSERT_TRUE(serial::ReadU64(alpha, &v));
  EXPECT_EQ(v, 7u);
}

TEST(SnapshotTest, OutOfRangeVersionsRejected) {
  for (const uint32_t version :
       {persist::kMinSupportedFormatVersion - 1,
        persist::kFormatVersion + 1}) {
    const std::string bytes = FrameWithVersion(version, {});
    std::istringstream in(bytes);
    persist::SnapshotReader reader;
    std::string error;
    EXPECT_FALSE(reader.Parse(in, &error)) << "version " << version;
    EXPECT_NE(error.find("version"), std::string::npos) << error;
  }
}

// ---------------------------------------------------------------------------
// Component round trips
// ---------------------------------------------------------------------------

EntityProfile MakeProfile(ProfileId id, SourceId source, std::string title) {
  return EntityProfile(id, source, {{"title", std::move(title)}});
}

// Serializes, restores into `fresh`, and checks the restored object
// re-serializes to the same bytes (canonical encoding).
template <typename T>
void ExpectCanonicalRoundTrip(const T& original, T& fresh) {
  std::ostringstream out;
  original.Snapshot(out);
  std::istringstream in(out.str());
  ASSERT_TRUE(fresh.Restore(in));
  std::ostringstream again;
  fresh.Snapshot(again);
  EXPECT_EQ(out.str(), again.str());
}

TEST(ComponentPersistTest, ProfileStoreRoundTrip) {
  Tokenizer tokenizer;
  TokenDictionary dict;
  ProfileStore store;
  for (ProfileId i = 0; i < 50; ++i) {
    EntityProfile p = MakeProfile(i, i % 2, "alpha beta " +
                                                std::to_string(i));
    tokenizer.TokenizeProfile(p, dict);
    store.Add(std::move(p));
  }

  std::ostringstream out;
  store.Snapshot(out);
  ProfileStore restored;
  std::istringstream in(out.str());
  ASSERT_TRUE(restored.Restore(in));
  ASSERT_EQ(restored.size(), store.size());
  for (ProfileId i = 0; i < 50; ++i) {
    const EntityProfile& a = store.Get(i);
    const EntityProfile& b = restored.Get(i);
    EXPECT_EQ(a.source, b.source);
    const std::span<const TokenId> ta = a.tokens();
    const std::span<const TokenId> tb = b.tokens();
    ASSERT_EQ(ta.size(), tb.size());
    EXPECT_TRUE(std::equal(ta.begin(), ta.end(), tb.begin()));
    EXPECT_EQ(a.flat_text(), b.flat_text());
    ASSERT_EQ(a.num_attributes(), b.num_attributes());
  }
  std::ostringstream again;
  restored.Snapshot(again);
  EXPECT_EQ(out.str(), again.str());

  // A non-empty store refuses to restore.
  std::istringstream in2(out.str());
  EXPECT_FALSE(restored.Restore(in2));
}

TEST(ComponentPersistTest, ProfileStoreMutatedRoundTripByteIdentical) {
  // Tombstones and in-place corrections leave abandoned spans behind
  // in the arenas; the snapshot must serialize the *surviving* state
  // so that a restore into fresh (compact) arenas re-snapshots the
  // exact same bytes.
  Tokenizer tokenizer;
  TokenDictionary dict;
  ProfileStore store;
  for (ProfileId i = 0; i < 60; ++i) {
    EntityProfile p = MakeProfile(i, i % 2, "alpha beta " +
                                                std::to_string(i));
    tokenizer.TokenizeProfile(p, dict);
    store.Add(std::move(p));
  }
  for (ProfileId i = 10; i < 25; ++i) store.Remove(i);
  for (ProfileId i = 20; i < 35; ++i) {  // ids 20..24 revive tombstones
    EntityProfile p = MakeProfile(i, i % 2, "corrected text " +
                                                std::to_string(i * 7));
    tokenizer.TokenizeProfile(p, dict);
    store.Replace(std::move(p));
  }
  ASSERT_GT(store.token_arena().abandoned_items(), 0u);
  ASSERT_EQ(store.num_live(), 50u);

  std::ostringstream out;
  store.Snapshot(out);
  ProfileStore restored;
  std::istringstream in(out.str());
  ASSERT_TRUE(restored.Restore(in));
  ASSERT_EQ(restored.size(), store.size());
  EXPECT_EQ(restored.num_live(), store.num_live());
  for (ProfileId i = 0; i < 60; ++i) {
    EXPECT_EQ(restored.IsLive(i), store.IsLive(i)) << "id " << i;
    EXPECT_EQ(restored.Get(i).flat_text(), store.Get(i).flat_text());
  }
  // Replacements survived, tombstones stayed cleared.
  EXPECT_TRUE(restored.Get(22).flat_text().find("corrected") !=
              std::string_view::npos);
  EXPECT_TRUE(restored.Get(12).flat_text().empty());

  // The restored arenas hold no abandoned spans (restore is compact),
  // yet the bytes written back must match exactly.
  EXPECT_EQ(restored.token_arena().abandoned_items(), 0u);
  std::ostringstream again;
  restored.Snapshot(again);
  EXPECT_EQ(out.str(), again.str());
}

TEST(ComponentPersistTest, TokenDictionaryRoundTrip) {
  TokenDictionary dict;
  for (const char* word : {"alpha", "beta", "gamma", "alpha", "beta"}) {
    dict.Intern(word);
  }
  TokenDictionary restored;
  ExpectCanonicalRoundTrip(dict, restored);
  EXPECT_EQ(restored.size(), dict.size());
  EXPECT_EQ(restored.Lookup("gamma"), dict.Lookup("gamma"));
  EXPECT_EQ(restored.DocFrequency(dict.Lookup("alpha")),
            dict.DocFrequency(dict.Lookup("alpha")));
}

TEST(ComponentPersistTest, BlockCollectionRoundTrip) {
  BlockingOptions options;
  BlockCollection blocks(DatasetKind::kDirty, options);
  Tokenizer tokenizer;
  TokenDictionary dict;
  ProfileStore store;
  for (ProfileId i = 0; i < 30; ++i) {
    EntityProfile p = MakeProfile(i, 0, "shared tok" + std::to_string(i % 7));
    tokenizer.TokenizeProfile(p, dict);
    blocks.AddProfile(p);
    store.Add(std::move(p));
  }

  std::ostringstream out;
  blocks.Snapshot(out);
  BlockCollection restored(DatasetKind::kDirty, options);
  std::istringstream in(out.str());
  ASSERT_TRUE(restored.Restore(in));
  EXPECT_EQ(restored.NumSlots(), blocks.NumSlots());
  EXPECT_EQ(restored.ApproxMemoryBytes(), blocks.ApproxMemoryBytes());
  std::ostringstream again;
  restored.Snapshot(again);
  EXPECT_EQ(out.str(), again.str());

  // Kind mismatch is rejected.
  BlockCollection wrong_kind(DatasetKind::kCleanClean, options);
  std::istringstream in2(out.str());
  EXPECT_FALSE(wrong_kind.Restore(in2));
}

TEST(ComponentPersistTest, ScalableBloomFilterRoundTrip) {
  ScalableBloomFilter filter;
  for (uint64_t k = 0; k < 5000; ++k) filter.TestAndAdd(k * 977);

  ScalableBloomFilter restored;
  ExpectCanonicalRoundTrip(filter, restored);
  // The restored filter answers identically.
  for (uint64_t k = 0; k < 5000; ++k) {
    EXPECT_TRUE(restored.MayContain(k * 977));
  }
  EXPECT_EQ(restored.num_insertions(), filter.num_insertions());
}

TEST(ComponentPersistTest, BloomFilterCorruptHeaderRejected) {
  BloomFilter filter(128, 0.01);
  filter.Add(7);
  std::ostringstream out;
  filter.Snapshot(out);
  std::string bytes = out.str();
  // num_hashes lives after the sentinel (u64) + layout (u8) +
  // expected_items (u64) + num_bits (u64) prefix.
  bytes[25] = static_cast<char>(0xFF);
  bytes[26] = static_cast<char>(0xFF);
  std::istringstream in(bytes);
  EXPECT_EQ(BloomFilter::FromSnapshot(in), nullptr);
}

TEST(ComponentPersistTest, WindowAverageRoundTrip) {
  WindowAverage avg(8);
  for (int i = 1; i <= 5; ++i) avg.Add(0.1 * i);
  WindowAverage restored(8);
  ExpectCanonicalRoundTrip(avg, restored);
  EXPECT_EQ(restored.Mean(), avg.Mean());

  WindowAverage wrong_window(4);
  std::ostringstream out;
  avg.Snapshot(out);
  std::istringstream in(out.str());
  EXPECT_FALSE(wrong_window.Restore(in));
}

TEST(ComponentPersistTest, AdaptiveKRoundTrip) {
  AdaptiveK controller;
  for (int i = 0; i < 20; ++i) {
    controller.OnArrival(0.25 * i);
    controller.OnBatchProcessed(64, 0.01);
    (void)controller.FindK();
  }
  AdaptiveK restored;
  ExpectCanonicalRoundTrip(controller, restored);
  EXPECT_EQ(restored.FindK(), controller.FindK());
  EXPECT_EQ(restored.MeanInterarrival(), controller.MeanInterarrival());
  EXPECT_EQ(restored.MeanCostPerComparison(),
            controller.MeanCostPerComparison());
}

TEST(ComponentPersistTest, BoundedPriorityQueueRestoreData) {
  BoundedPriorityQueue<int, std::less<int>> queue(4, std::less<int>());
  BoundedPriorityQueue<int, std::less<int>> restored(4, std::less<int>());
  queue.Push(3);
  queue.Push(1);
  queue.Push(2);
  ASSERT_TRUE(restored.RestoreData(
      std::vector<int>(queue.data().begin(), queue.data().end())));
  EXPECT_EQ(restored.size(), 3u);
  // Over-capacity payloads are rejected.
  EXPECT_FALSE(restored.RestoreData(std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(ComponentPersistTest, ComparisonRoundTrip) {
  const Comparison c(3, 9, 0.625, 17);
  std::ostringstream out;
  SnapshotComparison(out, c);
  std::istringstream in(out.str());
  Comparison restored(0, 0, 0.0, 0);
  ASSERT_TRUE(RestoreComparison(in, &restored));
  EXPECT_EQ(restored.x, c.x);
  EXPECT_EQ(restored.y, c.y);
  EXPECT_EQ(restored.weight, c.weight);
  EXPECT_EQ(restored.block_size, c.block_size);
}

// ---------------------------------------------------------------------------
// PierPipeline snapshot
// ---------------------------------------------------------------------------

std::vector<EntityProfile> SampleIncrement(ProfileId base, size_t n) {
  std::vector<EntityProfile> profiles;
  for (size_t i = 0; i < n; ++i) {
    profiles.push_back(MakeProfile(
        base + static_cast<ProfileId>(i), 0,
        "record alpha" + std::to_string((base + i) % 5) + " beta" +
            std::to_string((base + i) % 3)));
  }
  return profiles;
}

class PipelinePersistTest : public ::testing::TestWithParam<PierStrategy> {};

TEST_P(PipelinePersistTest, SnapshotRestoreSnapshotByteIdentical) {
  PierOptions options;
  options.kind = DatasetKind::kDirty;
  options.strategy = GetParam();
  PierPipeline pipeline(options);
  pipeline.ReportArrival(0.0);
  pipeline.Ingest(SampleIncrement(0, 20));
  (void)pipeline.EmitBatch(8);
  pipeline.ReportArrival(0.5);
  pipeline.Ingest(SampleIncrement(20, 20));
  (void)pipeline.EmitBatch(8);

  persist::SnapshotBuilder builder;
  pipeline.Snapshot(builder);
  std::istringstream in(builder.Bytes());
  persist::SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(reader.Parse(in, &error)) << error;

  PierPipeline restored(options);
  ASSERT_TRUE(restored.Restore(reader, &error)) << error;
  persist::SnapshotBuilder again;
  restored.Snapshot(again);
  EXPECT_EQ(builder.Bytes(), again.Bytes());

  // The restored pipeline continues with the identical verdict stream.
  for (int round = 0; round < 50; ++round) {
    const auto a = pipeline.EmitBatch(16);
    const auto b = restored.EmitBatch(16);
    ASSERT_EQ(a.size(), b.size()) << "round " << round;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].Key(), b[i].Key());
      EXPECT_EQ(a[i].weight, b[i].weight);
    }
    if (a.empty()) break;
  }
}

TEST_P(PipelinePersistTest, RestoreToleratesMissingClusterSection) {
  // v1 snapshots predate 'pier.clusters'; restore must treat the
  // missing section as an empty cluster index, not a hard failure.
  PierOptions options;
  options.kind = DatasetKind::kDirty;
  options.strategy = GetParam();
  PierPipeline pipeline(options);
  pipeline.ReportArrival(0.0);
  pipeline.Ingest(SampleIncrement(0, 20));
  (void)pipeline.EmitBatch(8);
  pipeline.RecordMatch(0, 1);

  persist::SnapshotBuilder builder;
  pipeline.Snapshot(builder);
  std::istringstream in(builder.Bytes());
  persist::SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(reader.Parse(in, &error)) << error;

  // Re-frame at v1 without the cluster section.
  std::vector<std::pair<std::string, std::string>> sections;
  for (const std::string& name : reader.section_names()) {
    if (name == "pier.clusters") continue;
    sections.emplace_back(name, *reader.Section(name));
  }
  std::istringstream v1_in(
      FrameWithVersion(persist::kMinSupportedFormatVersion, sections));
  persist::SnapshotReader v1_reader;
  ASSERT_TRUE(v1_reader.Parse(v1_in, &error)) << error;
  ASSERT_FALSE(v1_reader.Has("pier.clusters"));

  PierPipeline restored(options);
  ASSERT_TRUE(restored.Restore(v1_reader, &error)) << error;
  // The cluster index starts empty and repopulates from new verdicts.
  EXPECT_EQ(restored.clusters().universe_size(), 0u);
  restored.RecordMatch(2, 3);
  EXPECT_EQ(restored.clusters().ClusterIdOf(3), 2u);
}

TEST_P(PipelinePersistTest, FingerprintMismatchRejected) {
  PierOptions options;
  options.kind = DatasetKind::kDirty;
  options.strategy = GetParam();
  PierPipeline pipeline(options);
  pipeline.Ingest(SampleIncrement(0, 10));
  persist::SnapshotBuilder builder;
  pipeline.Snapshot(builder);
  std::istringstream in(builder.Bytes());
  persist::SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(reader.Parse(in, &error)) << error;

  PierOptions other = options;
  other.blocking.max_block_size += 1;
  PierPipeline mismatched(other);
  EXPECT_FALSE(mismatched.Restore(reader, &error));
  EXPECT_NE(error.find("configuration"), std::string::npos) << error;

  // A pipeline that already ingested refuses to restore.
  PierPipeline dirty(options);
  dirty.Ingest(SampleIncrement(0, 2));
  EXPECT_FALSE(dirty.Restore(reader, &error));
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, PipelinePersistTest,
                         ::testing::Values(PierStrategy::kIPcs,
                                           PierStrategy::kIPbs,
                                           PierStrategy::kIPes));

// ---------------------------------------------------------------------------
// CheckpointManager
// ---------------------------------------------------------------------------

class CheckpointManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pier_ckpt_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(CheckpointManagerTest, WriteFindLatestAndRotate) {
  persist::CheckpointOptions options;
  options.dir = dir_.string();
  options.every = 5;
  options.keep = 2;
  persist::CheckpointManager manager(options);
  ASSERT_TRUE(manager.enabled());
  EXPECT_TRUE(manager.Due(0));
  EXPECT_FALSE(manager.Due(3));
  EXPECT_TRUE(manager.Due(5));

  std::string error;
  for (uint64_t seq : {0, 5, 10, 15}) {
    persist::SnapshotBuilder builder;
    serial::WriteU64(builder.AddSection("seq"), seq);
    ASSERT_FALSE(manager.Write(seq, builder, &error).empty()) << error;
  }
  // Rotation keeps only the newest 2.
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u);
  const auto latest = persist::CheckpointManager::FindLatest(dir_.string());
  ASSERT_TRUE(latest.has_value());
  EXPECT_NE(latest->find("ckpt-00000015.piersnap"), std::string::npos);

  // The written file parses and holds the section.
  std::ifstream in(*latest, std::ios::binary);
  persist::SnapshotReader reader;
  ASSERT_TRUE(reader.Parse(in, &error)) << error;
  EXPECT_TRUE(reader.Has("seq"));
}

TEST_F(CheckpointManagerTest, DisabledWithoutDir) {
  persist::CheckpointManager manager(persist::CheckpointOptions{});
  EXPECT_FALSE(manager.enabled());
  EXPECT_FALSE(manager.Due(0));
}

TEST_F(CheckpointManagerTest, FindLatestEmptyDir) {
  EXPECT_FALSE(persist::CheckpointManager::FindLatest(dir_.string())
                   .has_value());
  fs::create_directories(dir_);
  EXPECT_FALSE(persist::CheckpointManager::FindLatest(dir_.string())
                   .has_value());
}

// ---------------------------------------------------------------------------
// ApproxMemoryBytes
// ---------------------------------------------------------------------------

TEST(ApproxMemoryBytesTest, GrowsWithState) {
  Tokenizer tokenizer;
  TokenDictionary dict;
  ProfileStore store;
  BlockingOptions blocking;
  BlockCollection blocks(DatasetKind::kDirty, blocking);
  // An empty store still reports its fixed chunk-directory overhead.
  const size_t store_empty = store.ApproxMemoryBytes();
  const size_t dict_empty = dict.ApproxMemoryBytes();
  const size_t blocks_empty = blocks.ApproxMemoryBytes();
  for (ProfileId i = 0; i < 100; ++i) {
    EntityProfile p = MakeProfile(i, 0, "tok" + std::to_string(i));
    tokenizer.TokenizeProfile(p, dict);
    blocks.AddProfile(p);
    store.Add(std::move(p));
  }
  EXPECT_GT(store.ApproxMemoryBytes(),
            store_empty + 100u * sizeof(EntityProfile));
  EXPECT_GT(dict.ApproxMemoryBytes(), dict_empty);
  EXPECT_GT(blocks.ApproxMemoryBytes(), blocks_empty);

  ScalableBloomFilter filter;
  const size_t filter_empty = filter.ApproxMemoryBytes();
  for (uint64_t k = 0; k < 100000; ++k) filter.TestAndAdd(k);
  EXPECT_GT(filter.ApproxMemoryBytes(), filter_empty);
}

}  // namespace
}  // namespace pier
