// Tests for the PierPipeline facade: ingest, emission with adaptive K,
// executed-comparison dedup, idle ticks, and eventual completeness on
// tiny crafted datasets.

#include <set>

#include <gtest/gtest.h>

#include "core/pier_pipeline.h"

namespace pier {
namespace {

EntityProfile Raw(ProfileId id, SourceId source, std::string title) {
  return EntityProfile(id, source, {{"title", std::move(title)}});
}

PierOptions SmallOptions(PierStrategy strategy,
                         DatasetKind kind = DatasetKind::kDirty) {
  PierOptions options;
  options.kind = kind;
  options.strategy = strategy;
  return options;
}

class PipelineStrategyTest : public ::testing::TestWithParam<PierStrategy> {};

TEST_P(PipelineStrategyTest, IngestTokenizesAndBlocks) {
  PierPipeline pipeline(SmallOptions(GetParam()));
  const WorkStats stats = pipeline.Ingest(
      {Raw(0, 0, "alpha beta"), Raw(1, 0, "beta gamma")});
  EXPECT_EQ(stats.profiles, 2u);
  EXPECT_EQ(stats.tokens, 4u);
  EXPECT_EQ(pipeline.profiles().size(), 2u);
  EXPECT_EQ(pipeline.dictionary().size(), 3u);
  EXPECT_EQ(pipeline.blocks().block(pipeline.dictionary().Lookup("beta"))
                .size(),
            2u);
}

TEST_P(PipelineStrategyTest, EmitsSharedTokenPair) {
  PierPipeline pipeline(SmallOptions(GetParam()));
  pipeline.Ingest({Raw(0, 0, "alpha beta"), Raw(1, 0, "alpha beta")});
  const auto batch = pipeline.EmitBatch(10);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(PairKey(batch[0].x, batch[0].y), PairKey(0, 1));
}

TEST_P(PipelineStrategyTest, NeverEmitsSamePairTwice) {
  PierPipeline pipeline(SmallOptions(GetParam()));
  pipeline.Ingest({Raw(0, 0, "alpha beta"), Raw(1, 0, "alpha beta"),
                   Raw(2, 0, "alpha gamma")});
  std::set<uint64_t> seen;
  // Emit across many ticks: the executed filter must dedup across the
  // scanner fallback re-offering block pairs.
  for (int round = 0; round < 10; ++round) {
    for (const auto& c : pipeline.EmitBatch(100)) {
      EXPECT_TRUE(seen.insert(c.Key()).second)
          << "duplicate pair " << c.x << "," << c.y;
    }
    pipeline.Tick();
  }
  EXPECT_GE(seen.size(), 2u);
}

TEST_P(PipelineStrategyTest, EventuallyCoversAllCoBlockedPairs) {
  // 4 profiles sharing one token: all 6 pairs must eventually be
  // emitted (eventual quality) across ticks.
  PierPipeline pipeline(SmallOptions(GetParam()));
  pipeline.Ingest({Raw(0, 0, "omega one"), Raw(1, 0, "omega two"),
                   Raw(2, 0, "omega three"), Raw(3, 0, "omega four")});
  std::set<uint64_t> seen;
  for (int round = 0; round < 30; ++round) {
    for (const auto& c : pipeline.EmitBatch(100)) seen.insert(c.Key());
    pipeline.Tick();
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST_P(PipelineStrategyTest, CrossIncrementPairsEmitted) {
  PierPipeline pipeline(SmallOptions(GetParam()));
  pipeline.Ingest({Raw(0, 0, "unique alpha")});
  pipeline.EmitBatch(10);
  pipeline.Ingest({Raw(1, 0, "unique beta")});
  std::set<uint64_t> seen;
  for (int round = 0; round < 10; ++round) {
    for (const auto& c : pipeline.EmitBatch(100)) seen.insert(c.Key());
    pipeline.Tick();
  }
  EXPECT_TRUE(seen.count(PairKey(0, 1)));
}

TEST_P(PipelineStrategyTest, CleanCleanSkipsSameSourcePairs) {
  PierPipeline pipeline(
      SmallOptions(GetParam(), DatasetKind::kCleanClean));
  pipeline.Ingest({Raw(0, 0, "shared token"), Raw(1, 0, "shared token"),
                   Raw(2, 1, "shared token")});
  std::set<uint64_t> seen;
  for (int round = 0; round < 10; ++round) {
    for (const auto& c : pipeline.EmitBatch(100)) {
      EXPECT_NE(pipeline.profiles().Get(c.x).source,
                pipeline.profiles().Get(c.y).source);
      seen.insert(c.Key());
    }
    pipeline.Tick();
  }
  EXPECT_EQ(seen.size(), 2u);
}

TEST_P(PipelineStrategyTest, EmitBatchRespectsK) {
  PierPipeline pipeline(SmallOptions(GetParam()));
  std::vector<EntityProfile> profiles;
  for (ProfileId id = 0; id < 10; ++id) {
    profiles.push_back(Raw(id, 0, "popular token" + std::to_string(id)));
  }
  pipeline.Ingest(std::move(profiles));
  EXPECT_LE(pipeline.EmitBatch(3).size(), 3u);
}

TEST_P(PipelineStrategyTest, CountsEmittedComparisons) {
  PierPipeline pipeline(SmallOptions(GetParam()));
  pipeline.Ingest({Raw(0, 0, "alpha beta"), Raw(1, 0, "alpha beta")});
  EXPECT_EQ(pipeline.comparisons_emitted(), 0u);
  pipeline.EmitBatch(10);
  EXPECT_EQ(pipeline.comparisons_emitted(), 1u);
}

TEST_P(PipelineStrategyTest, ExactFilterAblationBehavesIdentically) {
  PierOptions options = SmallOptions(GetParam());
  options.exact_executed_filter = true;
  PierPipeline pipeline(options);
  pipeline.Ingest({Raw(0, 0, "alpha beta"), Raw(1, 0, "alpha beta")});
  EXPECT_EQ(pipeline.EmitBatch(10).size(), 1u);
  pipeline.Tick();
  EXPECT_TRUE(pipeline.EmitBatch(10).empty());  // deduped
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, PipelineStrategyTest,
                         ::testing::Values(PierStrategy::kIPcs,
                                           PierStrategy::kIPbs,
                                           PierStrategy::kIPes),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case PierStrategy::kIPcs:
                               return "IPcs";
                             case PierStrategy::kIPbs:
                               return "IPbs";
                             case PierStrategy::kIPes:
                               return "IPes";
                           }
                           return "Unknown";
                         });

TEST(PipelineTest, StrategyNames) {
  EXPECT_STREQ(ToString(PierStrategy::kIPcs), "I-PCS");
  EXPECT_STREQ(ToString(PierStrategy::kIPbs), "I-PBS");
  EXPECT_STREQ(ToString(PierStrategy::kIPes), "I-PES");
}

TEST(PipelineTest, AdaptiveKFeedbackFlows) {
  PierPipeline pipeline(SmallOptions(PierStrategy::kIPes));
  pipeline.ReportArrival(0.0);
  pipeline.ReportArrival(1.0);
  pipeline.ReportBatchCost(100, 0.001);
  EXPECT_DOUBLE_EQ(pipeline.adaptive_k().MeanInterarrival(), 1.0);
  EXPECT_GT(pipeline.adaptive_k().FindK(), 0u);
}

TEST(PipelineTest, EmitBatchUsesAdaptiveKByDefault) {
  PierOptions options = SmallOptions(PierStrategy::kIPes);
  options.adaptive_k.initial_k = 1;
  PierPipeline pipeline(options);
  pipeline.Ingest({Raw(0, 0, "x alpha"), Raw(1, 0, "x alpha"),
                   Raw(2, 0, "x beta")});
  EXPECT_EQ(pipeline.EmitBatch().size(), 1u);  // K = initial_k = 1
}

}  // namespace
}  // namespace pier
