// Tests for the three PIER prioritizers (I-PCS, I-PBS, I-PES) on
// hand-crafted block structures: emission order, global index
// maintenance across increments (globality), dedup, fallback
// scanning, and bounded-memory behaviour.

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/block_scanner.h"
#include "core/i_pbs.h"
#include "core/i_pcs.h"
#include "core/i_pes.h"
#include "core/prioritizer.h"

namespace pier {
namespace {

// Harness that mimics the pipeline's ingest for hand-specified token
// sets: profiles are blocked before the prioritizer update, exactly as
// PierPipeline::Ingest does.
class PrioritizerFixture : public ::testing::Test {
 protected:
  explicit PrioritizerFixture(DatasetKind kind = DatasetKind::kDirty)
      : blocks_(kind) {}

  std::vector<ProfileId> AddIncrement(
      std::vector<std::pair<SourceId, std::vector<TokenId>>> specs) {
    std::vector<ProfileId> delta;
    for (auto& [source, tokens] : specs) {
      EntityProfile p(static_cast<ProfileId>(profiles_.size()), source, {});
      std::sort(tokens.begin(), tokens.end());
      p.set_tokens(std::move(tokens));
      blocks_.AddProfile(p);
      delta.push_back(p.id);
      profiles_.Add(std::move(p));
    }
    return delta;
  }

  PrioritizerContext Ctx() { return PrioritizerContext{&blocks_, &profiles_}; }

  static std::vector<Comparison> Drain(IncrementalPrioritizer& p,
                                       size_t limit = 1000) {
    std::vector<Comparison> out;
    Comparison c;
    while (out.size() < limit && p.Dequeue(&c)) out.push_back(c);
    return out;
  }

  BlockCollection blocks_;
  ProfileStore profiles_;
  PrioritizerOptions options_;
};

// ---------------------------------------------------------------------------
// I-PCS
// ---------------------------------------------------------------------------

class IPcsTest : public PrioritizerFixture {};

TEST_F(IPcsTest, EmitsHighestWeightFirst) {
  // p0,p1 share two tokens (CBS 2); p2 shares one token with each.
  auto delta = AddIncrement({{0, {0, 1}}, {0, {0, 1}}, {0, {1, 2}}});
  IPcs pcs(Ctx(), options_);
  pcs.UpdateCmpIndex(delta);
  const auto emitted = Drain(pcs);
  ASSERT_FALSE(emitted.empty());
  EXPECT_EQ(PairKey(emitted[0].x, emitted[0].y), PairKey(0, 1));
  EXPECT_DOUBLE_EQ(emitted[0].weight, 2.0);
  for (size_t i = 1; i < emitted.size(); ++i) {
    EXPECT_LE(emitted[i].weight, emitted[i - 1].weight);
  }
}

TEST_F(IPcsTest, GlobalityAcrossIncrements) {
  // Increment 1: a strong pair. Dequeue nothing yet. Increment 2: a
  // weak pair. The strong increment-1 pair must still come out first.
  IPcs pcs(Ctx(), options_);
  pcs.UpdateCmpIndex(AddIncrement({{0, {0, 1, 2}}, {0, {0, 1, 2}}}));
  pcs.UpdateCmpIndex(AddIncrement({{0, {5, 2}}}));
  Comparison c;
  ASSERT_TRUE(pcs.Dequeue(&c));
  EXPECT_EQ(PairKey(c.x, c.y), PairKey(0, 1));
}

TEST_F(IPcsTest, EachPairGeneratedOnce) {
  auto delta = AddIncrement({{0, {0}}, {0, {0}}, {0, {0}}});
  IPcs pcs(Ctx(), options_);
  pcs.UpdateCmpIndex(delta);
  const auto emitted = Drain(pcs);
  std::set<uint64_t> keys;
  for (const auto& c : emitted) {
    EXPECT_TRUE(keys.insert(c.Key()).second) << c.x << "," << c.y;
  }
  EXPECT_EQ(keys.size(), 3u);  // C(3,2)
}

TEST_F(IPcsTest, EmptyTickWithEmptyIndexFallsBackToScanner) {
  auto delta = AddIncrement({{0, {0}}, {0, {0}}});
  IPcs pcs(Ctx(), options_);
  pcs.UpdateCmpIndex(delta);
  Drain(pcs);
  EXPECT_TRUE(pcs.Empty());
  // Idle tick: the scanner re-offers block comparisons (the pipeline's
  // executed filter suppresses re-matching downstream).
  pcs.UpdateCmpIndex({});
  EXPECT_FALSE(pcs.Empty());
  const auto again = Drain(pcs);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(PairKey(again[0].x, again[0].y), PairKey(0, 1));
}

TEST_F(IPcsTest, BoundedIndexKeepsBestComparisons) {
  options_.cmp_index_capacity = 1;
  IPcs pcs(Ctx(), options_);
  // Two pairs: (0,1) CBS 2 via tokens {0,1}; (2,3) CBS 1 via token 5.
  pcs.UpdateCmpIndex(AddIncrement(
      {{0, {0, 1}}, {0, {0, 1}}, {0, {5}}, {0, {5}}}));
  const auto emitted = Drain(pcs);
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_DOUBLE_EQ(emitted[0].weight, 2.0);
}

TEST_F(IPcsTest, IWnpPrunesWeakNeighborhoodComparisons) {
  // p4 shares 3 tokens with p0 but only 1 with each of p1..p3: the
  // below-mean neighbours are pruned from p4's candidate list.
  AddIncrement({{0, {0, 1, 2}}, {0, {3}}, {0, {4}}, {0, {5}}});
  IPcs pcs(Ctx(), options_);
  auto delta = AddIncrement({{0, {0, 1, 2, 3, 4, 5}}});
  pcs.UpdateCmpIndex(delta);
  const auto emitted = Drain(pcs);
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(PairKey(emitted[0].x, emitted[0].y), PairKey(0, 4));
}

// ---------------------------------------------------------------------------
// I-PBS
// ---------------------------------------------------------------------------

class IPbsTest : public PrioritizerFixture {};

TEST_F(IPbsTest, SchedulesSmallestBlockFirst) {
  // Token 0: block of 2; token 1: block of 4.
  auto delta = AddIncrement({{0, {0}},
                             {0, {0}},
                             {0, {1}},
                             {0, {1}},
                             {0, {1}},
                             {0, {1}}});
  IPbs pbs(Ctx(), options_);
  pbs.UpdateCmpIndex(delta);
  Comparison c;
  ASSERT_TRUE(pbs.Dequeue(&c));
  EXPECT_EQ(PairKey(c.x, c.y), PairKey(0, 1));
  EXPECT_EQ(c.block_size, 2u);
}

TEST_F(IPbsTest, OneBlockPerUpdate) {
  auto delta = AddIncrement({{0, {0}}, {0, {0}}, {0, {1}}, {0, {1}}});
  IPbs pbs(Ctx(), options_);
  pbs.UpdateCmpIndex(delta);
  EXPECT_EQ(pbs.NumPendingBlocks(), 1u);  // one of the two scheduled
  const auto first = Drain(pbs);
  EXPECT_EQ(first.size(), 1u);
  // Next (empty) update schedules the remaining block.
  pbs.UpdateCmpIndex({});
  const auto second = Drain(pbs);
  EXPECT_EQ(second.size(), 1u);
  EXPECT_NE(first[0].Key(), second[0].Key());
  EXPECT_EQ(pbs.NumPendingBlocks(), 0u);
}

TEST_F(IPbsTest, ComparisonFilterSuppressesRedundantPairs) {
  // p0,p1 share both tokens: the pair appears in two blocks but must
  // be scheduled once.
  auto delta = AddIncrement({{0, {0, 1}}, {0, {0, 1}}});
  IPbs pbs(Ctx(), options_);
  pbs.UpdateCmpIndex(delta);
  pbs.UpdateCmpIndex({});
  pbs.UpdateCmpIndex({});
  const auto emitted = Drain(pbs);
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(PairKey(emitted[0].x, emitted[0].y), PairKey(0, 1));
}

TEST_F(IPbsTest, SmallBlockPreemptsAndWeightOrdersWithinBlock) {
  // Token 9 blocks p0..p2 (size 3); p1,p2 additionally share token 5
  // (size 2): the token-5 pair is scheduled and emitted first.
  auto delta = AddIncrement({{0, {9}}, {0, {9, 5}}, {0, {9, 5}}});
  IPbs pbs(Ctx(), options_);
  pbs.UpdateCmpIndex(delta);
  auto first = Drain(pbs);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(PairKey(first[0].x, first[0].y), PairKey(1, 2));
  EXPECT_EQ(first[0].block_size, 2u);
  // Once drained, the next update schedules the bigger token-9 block;
  // the (1,2) pair is suppressed by the comparison filter.
  pbs.UpdateCmpIndex({});
  const auto second = Drain(pbs);
  ASSERT_EQ(second.size(), 2u);
  std::set<uint64_t> keys;
  for (const auto& c : second) {
    keys.insert(c.Key());
    EXPECT_EQ(c.block_size, 3u);
  }
  EXPECT_TRUE(keys.count(PairKey(0, 1)));
  EXPECT_TRUE(keys.count(PairKey(0, 2)));
}

TEST_F(IPbsTest, CrossIncrementComparisonsGenerated) {
  IPbs pbs(Ctx(), options_);
  pbs.UpdateCmpIndex(AddIncrement({{0, {0}}}));
  Drain(pbs);
  pbs.UpdateCmpIndex(AddIncrement({{0, {0}}}));
  const auto emitted = Drain(pbs);
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(PairKey(emitted[0].x, emitted[0].y), PairKey(0, 1));
}

TEST_F(IPbsTest, CleanCleanOnlyCrossSource) {
  BlockCollection cc_blocks(DatasetKind::kCleanClean);
  ProfileStore cc_profiles;
  std::vector<ProfileId> delta;
  auto add = [&](SourceId s, std::vector<TokenId> tokens) {
    EntityProfile p(static_cast<ProfileId>(cc_profiles.size()), s, {});
    p.set_tokens(std::move(tokens));
    cc_blocks.AddProfile(p);
    delta.push_back(p.id);
    cc_profiles.Add(std::move(p));
  };
  add(0, {0});
  add(0, {0});
  add(1, {0});
  IPbs pbs(PrioritizerContext{&cc_blocks, &cc_profiles}, options_);
  pbs.UpdateCmpIndex(delta);
  pbs.UpdateCmpIndex({});
  const auto emitted = Drain(pbs);
  ASSERT_EQ(emitted.size(), 2u);  // (0,2) and (1,2); never (0,1)
  for (const auto& c : emitted) {
    EXPECT_NE(cc_profiles.Get(c.x).source, cc_profiles.Get(c.y).source);
  }
}

// ---------------------------------------------------------------------------
// I-PES
// ---------------------------------------------------------------------------

class IPesTest : public PrioritizerFixture {};

TEST_F(IPesTest, EmitsBestEntityComparisonFirst) {
  auto delta = AddIncrement({{0, {0, 1}}, {0, {0, 1}}, {0, {1, 2}}});
  IPes pes(Ctx(), options_);
  pes.UpdateCmpIndex(delta);
  Comparison c;
  ASSERT_TRUE(pes.Dequeue(&c));
  EXPECT_EQ(PairKey(c.x, c.y), PairKey(0, 1));  // CBS 2 beats CBS 1
}

TEST_F(IPesTest, DrainsEverythingItAccepted) {
  auto delta = AddIncrement({{0, {0}}, {0, {0}}, {0, {1}}, {0, {1}}});
  IPes pes(Ctx(), options_);
  pes.UpdateCmpIndex(delta);
  const auto emitted = Drain(pes);
  EXPECT_EQ(emitted.size(), 2u);
  EXPECT_TRUE(pes.Empty());
}

TEST_F(IPesTest, GlobalityAcrossIncrements) {
  IPes pes(Ctx(), options_);
  pes.UpdateCmpIndex(AddIncrement({{0, {0, 1, 2}}, {0, {0, 1, 2}}}));
  // New increment with weaker pairs must not displace the old best.
  pes.UpdateCmpIndex(AddIncrement({{0, {7, 2}}}));
  Comparison c;
  ASSERT_TRUE(pes.Dequeue(&c));
  EXPECT_EQ(PairKey(c.x, c.y), PairKey(0, 1));
}

TEST_F(IPesTest, EntityQueueRefillsFromEntityIndex) {
  // Bound the EntityQueue to one ref: the second entity's comparison
  // can only surface through a refill from E_PQ.
  options_.entity_queue_capacity = 1;
  IPes pes(Ctx(), options_);
  pes.UpdateCmpIndex(
      AddIncrement({{0, {0}}, {0, {0}}, {0, {5}}, {0, {5}}}));
  const auto emitted = Drain(pes);
  EXPECT_EQ(emitted.size(), 2u);
  EXPECT_GE(pes.NumEntityQueueRefills(), 1u);
  EXPECT_TRUE(pes.Empty());
}

TEST_F(IPesTest, AllPairsEventuallyEmitted) {
  auto delta = AddIncrement(
      {{0, {0, 1, 2}}, {0, {0, 1, 2}}, {0, {0, 1, 2}}, {0, {0, 1, 2}}});
  IPes pes(Ctx(), options_);
  pes.UpdateCmpIndex(delta);
  const auto emitted = Drain(pes);
  std::set<uint64_t> keys;
  for (const auto& c : emitted) keys.insert(c.Key());
  EXPECT_EQ(keys.size(), 6u);  // C(4,2), all CBS 3
  EXPECT_TRUE(pes.Empty());
}

TEST_F(IPesTest, TracksGlobalMeanWeight) {
  auto delta = AddIncrement({{0, {0, 1}}, {0, {0, 1}}});
  IPes pes(Ctx(), options_);
  EXPECT_DOUBLE_EQ(pes.GlobalMeanWeight(), 0.0);
  pes.UpdateCmpIndex(delta);
  EXPECT_DOUBLE_EQ(pes.GlobalMeanWeight(), 2.0);  // single CBS-2 pair
}

TEST_F(IPesTest, FallbackScannerOnIdleTick) {
  auto delta = AddIncrement({{0, {0}}, {0, {0}}});
  IPes pes(Ctx(), options_);
  pes.UpdateCmpIndex(delta);
  Drain(pes);
  EXPECT_TRUE(pes.Empty());
  pes.UpdateCmpIndex({});
  EXPECT_FALSE(pes.Empty());
}

TEST_F(IPesTest, PerEntityCapacityBoundsMemory) {
  options_.per_entity_capacity = 2;
  IPes pes(Ctx(), options_);
  // p0 shares a distinct pair of tokens with each of 6 others, at
  // varying strength; its entity queue holds at most 2.
  std::vector<std::pair<SourceId, std::vector<TokenId>>> specs;
  std::vector<TokenId> all;
  for (TokenId t = 0; t < 12; ++t) all.push_back(t);
  specs.push_back({0, all});
  for (int i = 0; i < 6; ++i) {
    specs.push_back({0, {static_cast<TokenId>(2 * i),
                         static_cast<TokenId>(2 * i + 1)}});
  }
  pes.UpdateCmpIndex(AddIncrement(specs));
  EXPECT_LE(pes.NumTrackedEntities(), 7u);
  const auto emitted = Drain(pes);
  // Everything still drains (overflow demoted to PQ), nothing repeats.
  std::set<uint64_t> keys;
  for (const auto& c : emitted) EXPECT_TRUE(keys.insert(c.Key()).second);
}

TEST_F(IPesTest, DrainedEntitiesArePrunedFromIndex) {
  IPes pes(Ctx(), options_);
  pes.UpdateCmpIndex(
      AddIncrement({{0, {0}}, {0, {0}}, {0, {5}}, {0, {5}}}));
  EXPECT_GT(pes.NumTrackedEntities(), 0u);
  Drain(pes);
  // Fully drained: no entity may keep an (empty) queue alive.
  EXPECT_EQ(pes.NumTrackedEntities(), 0u);
}

// ---------------------------------------------------------------------------
// BlockScanner
// ---------------------------------------------------------------------------

class BlockScannerTest : public PrioritizerFixture {};

TEST_F(BlockScannerTest, ScansSmallestBlockFirst) {
  AddIncrement({{0, {0}}, {0, {0}}, {0, {1}}, {0, {1}}, {0, {1}}});
  BlockScanner scanner(Ctx());
  WorkStats stats;
  const auto first = scanner.NextBlock(&stats);
  ASSERT_EQ(first.size(), 1u);  // token-0 block of 2
  EXPECT_EQ(first[0].block_size, 2u);
  const auto second = scanner.NextBlock(&stats);
  EXPECT_EQ(second.size(), 3u);  // token-1 block of 3
  EXPECT_TRUE(scanner.NextBlock(&stats).empty());
  EXPECT_TRUE(scanner.Exhausted());
}

TEST_F(BlockScannerTest, PicksUpBlocksAddedAfterBuild) {
  AddIncrement({{0, {0}}, {0, {0}}});
  BlockScanner scanner(Ctx());
  WorkStats stats;
  EXPECT_EQ(scanner.NextBlock(&stats).size(), 1u);
  EXPECT_TRUE(scanner.NextBlock(&stats).empty());
  // A new block appears; the rebuild finds it.
  AddIncrement({{0, {1}}, {0, {1}}});
  EXPECT_EQ(scanner.NextBlock(&stats).size(), 1u);
}

TEST_F(BlockScannerTest, ReoffersBlocksAfterSignificantGrowth) {
  AddIncrement({{0, {0}}, {0, {0}}});
  BlockScanner scanner(Ctx());
  WorkStats stats;
  EXPECT_EQ(scanner.NextBlock(&stats).size(), 1u);  // pair (0,1)
  EXPECT_TRUE(scanner.NextBlock(&stats).empty());
  // Two new members exceed the growth throttle: the rescan re-offers
  // all C(4,2) pairs (the pipeline's executed filter drops the one
  // already compared).
  AddIncrement({{0, {0}}, {0, {0}}});
  const auto again = scanner.NextBlock(&stats);
  EXPECT_EQ(again.size(), 6u);
  EXPECT_TRUE(scanner.NextBlock(&stats).empty());
  EXPECT_TRUE(scanner.Exhausted());
}

TEST_F(BlockScannerTest, ThrottleDefersSmallGrowthUntilStreamEnd) {
  AddIncrement({{0, {0}}, {0, {0}}});
  BlockScanner scanner(Ctx());
  WorkStats stats;
  EXPECT_EQ(scanner.NextBlock(&stats).size(), 1u);
  // A single new member stays below the throttle while streaming...
  AddIncrement({{0, {0}}});
  EXPECT_TRUE(scanner.NextBlock(&stats).empty());
  // ...but the stream-end full rescan picks it up.
  scanner.AllowFullRescan();
  EXPECT_EQ(scanner.NextBlock(&stats).size(), 3u);
  EXPECT_TRUE(scanner.NextBlock(&stats).empty());
}

TEST_F(BlockScannerTest, CountsGeneratedComparisons) {
  AddIncrement({{0, {0}}, {0, {0}}, {0, {0}}});
  BlockScanner scanner(Ctx());
  WorkStats stats;
  scanner.NextBlock(&stats);
  EXPECT_EQ(stats.comparisons_generated, 3u);
}

}  // namespace
}  // namespace pier
