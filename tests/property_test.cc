// Randomized property tests across module boundaries:
//  * pipeline fuzz -- random increment schedules against every
//    strategy, checking emission invariants (no duplicate pairs, valid
//    ids, cross-source discipline);
//  * simulator invariants -- curves are monotone, matches bounded by
//    the ground truth;
//  * robustness / failure injection -- degenerate profiles (empty
//    values, huge values, binary junk, token-free) must not break the
//    pipeline.

#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "core/pier_pipeline.h"
#include "datagen/generators.h"
#include "similarity/matcher.h"
#include "stream/pier_adapter.h"
#include "stream/stream_simulator.h"
#include "util/rng.h"

namespace pier {
namespace {

class PipelineFuzzTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, PierStrategy>> {};

TEST_P(PipelineFuzzTest, EmissionInvariantsHold) {
  const auto [seed, strategy] = GetParam();
  Rng rng(seed);

  const DatasetKind kind =
      rng.Bernoulli(0.5) ? DatasetKind::kDirty : DatasetKind::kCleanClean;
  PierOptions options;
  options.kind = kind;
  options.strategy = strategy;
  // Exercise small bounded queues too.
  options.prioritizer.cmp_index_capacity = 1 << (4 + rng.UniformInt(0, 8));
  options.prioritizer.per_entity_capacity = 1 + rng.UniformInt(0, 15);
  PierPipeline pipeline(options);

  // Random stream: profiles draw 1-4 tokens from a tiny vocabulary so
  // collisions (blocks) are frequent.
  ProfileId next_id = 0;
  std::set<uint64_t> emitted;
  for (int increment = 0; increment < 12; ++increment) {
    std::vector<EntityProfile> profiles;
    const size_t count = 1 + rng.UniformInt(0, 7);
    for (size_t i = 0; i < count; ++i) {
      std::string text;
      const size_t tokens = 1 + rng.UniformInt(0, 3);
      for (size_t t = 0; t < tokens; ++t) {
        text += " word" + std::to_string(rng.UniformInt(0, 11));
      }
      const SourceId source =
          kind == DatasetKind::kDirty
              ? 0
              : static_cast<SourceId>(rng.UniformInt(0, 1));
      profiles.emplace_back(next_id++, source,
                            std::vector<Attribute>{{"text", text}});
    }
    pipeline.Ingest(std::move(profiles));

    // Random amount of draining, sometimes none.
    const size_t k = rng.UniformInt(0, 40);
    for (const auto& c : pipeline.EmitBatch(k)) {
      ASSERT_NE(c.x, c.y);
      ASSERT_LT(c.x, next_id);
      ASSERT_LT(c.y, next_id);
      ASSERT_TRUE(emitted.insert(c.Key()).second)
          << "duplicate emission " << c.x << "," << c.y;
      if (kind == DatasetKind::kCleanClean) {
        ASSERT_NE(pipeline.profiles().Get(c.x).source,
                  pipeline.profiles().Get(c.y).source);
      }
    }
    if (rng.Bernoulli(0.3)) pipeline.Tick();
  }

  // Full drain: still no duplicates, and emitted counter consistent.
  for (int round = 0; round < 50; ++round) {
    const auto batch = pipeline.EmitBatch(1000);
    if (batch.empty()) break;
    for (const auto& c : batch) {
      ASSERT_TRUE(emitted.insert(c.Key()).second);
    }
  }
  EXPECT_EQ(pipeline.comparisons_emitted(), emitted.size());
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, PipelineFuzzTest,
    ::testing::Combine(::testing::Values(1u, 7u, 21u, 42u, 77u, 99u),
                       ::testing::Values(PierStrategy::kIPcs,
                                         PierStrategy::kIPbs,
                                         PierStrategy::kIPes)));

class SimulatorInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulatorInvariantTest, CurvesMonotoneAndBounded) {
  Rng rng(GetParam());
  BibliographicOptions data_options;
  data_options.source0_count = 80 + rng.UniformInt(0, 120);
  data_options.source1_count = 80 + rng.UniformInt(0, 120);
  data_options.seed = rng.NextU64();
  const Dataset d = GenerateBibliographic(data_options);

  SimulatorOptions sim_options;
  sim_options.num_increments = 1 + rng.UniformInt(0, 30);
  sim_options.increments_per_second =
      rng.Bernoulli(0.5) ? 0.0 : 1.0 + rng.UniformDouble() * 20.0;
  sim_options.cost_mode = CostMeter::Mode::kModeled;
  const StreamSimulator sim(&d, sim_options);

  PierOptions options;
  options.kind = d.kind;
  options.strategy = static_cast<PierStrategy>(rng.UniformInt(0, 2));
  PierAdapter alg(options);
  const JaccardMatcher matcher(0.4);
  const RunResult r = sim.Run(alg, matcher);

  ASSERT_FALSE(r.curve.empty());
  const auto& points = r.curve.points();
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].time, points[i - 1].time);
    EXPECT_GE(points[i].comparisons, points[i - 1].comparisons);
    EXPECT_GE(points[i].matches_found, points[i - 1].matches_found);
  }
  EXPECT_LE(r.matches_found, r.total_true_matches);
  EXPECT_LE(r.matches_found, r.comparisons_executed);
  EXPECT_EQ(points.back().matches_found, r.matches_found);
  EXPECT_LE(r.FinalPc(), 1.0);
  if (r.stream_consumed_at >= 0.0) {
    EXPECT_LE(r.stream_consumed_at, r.end_time);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorInvariantTest,
                         ::testing::Values(3u, 13u, 23u, 33u, 43u));

// ---------------------------------------------------------------------------
// Failure injection / degenerate inputs
// ---------------------------------------------------------------------------

class DegenerateInputTest : public ::testing::TestWithParam<PierStrategy> {};

TEST_P(DegenerateInputTest, HandlesProfilesWithoutUsableTokens) {
  PierOptions options;
  options.strategy = GetParam();
  PierPipeline pipeline(options);
  pipeline.Ingest({EntityProfile(0, 0, {{"a", ""}}),
                   EntityProfile(1, 0, {{"a", "! @ # $"}}),
                   EntityProfile(2, 0, {})});
  EXPECT_TRUE(pipeline.EmitBatch(10).empty());
  pipeline.Tick();
  EXPECT_TRUE(pipeline.EmitBatch(10).empty());
}

TEST_P(DegenerateInputTest, HandlesHugeAndBinaryValues) {
  PierOptions options;
  options.strategy = GetParam();
  PierPipeline pipeline(options);
  std::string huge(100000, 'x');
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  pipeline.Ingest({EntityProfile(0, 0, {{"blob", huge + " shared"}}),
                   EntityProfile(1, 0, {{"bin", binary + " shared"}})});
  const auto batch = pipeline.EmitBatch(10);
  ASSERT_EQ(batch.size(), 1u);  // they share the "shared" token
  const EditDistanceMatcher matcher(0.5, 256);
  // The matcher caps text length, so even the huge value is cheap.
  EXPECT_GE(matcher.Similarity(pipeline.profiles().Get(0),
                               pipeline.profiles().Get(1)),
            0.0);
}

TEST_P(DegenerateInputTest, ManyIdenticalProfiles) {
  PierOptions options;
  options.strategy = GetParam();
  options.kind = DatasetKind::kDirty;
  PierPipeline pipeline(options);
  std::vector<EntityProfile> profiles;
  for (ProfileId id = 0; id < 30; ++id) {
    profiles.emplace_back(id, 0,
                          std::vector<Attribute>{{"n", "same exact text"}});
  }
  pipeline.Ingest(std::move(profiles));
  std::set<uint64_t> seen;
  for (int round = 0; round < 100; ++round) {
    const auto batch = pipeline.EmitBatch(1000);
    if (batch.empty()) break;
    for (const auto& c : batch) {
      EXPECT_TRUE(seen.insert(c.Key()).second);
    }
  }
  EXPECT_LE(seen.size(), 30u * 29u / 2u);
  EXPECT_GE(seen.size(), 29u);  // at least a spanning set of the clique
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, DegenerateInputTest,
                         ::testing::Values(PierStrategy::kIPcs,
                                           PierStrategy::kIPbs,
                                           PierStrategy::kIPes));

}  // namespace
}  // namespace pier
