// Tests for the LS-PSN / GS-PSN progressive sorted-neighborhood
// baselines.

#include <set>

#include <gtest/gtest.h>

#include "baseline/psn.h"

namespace pier {
namespace {

EntityProfile Raw(ProfileId id, SourceId source, std::string title) {
  return EntityProfile(id, source, {{"title", std::move(title)}});
}

std::vector<Comparison> DrainAll(ErAlgorithm& alg, size_t max_batches = 200) {
  std::vector<Comparison> out;
  WorkStats stats;
  for (size_t i = 0; i < max_batches; ++i) {
    auto batch = alg.NextBatch(&stats);
    if (batch.empty()) break;
    out.insert(out.end(), batch.begin(), batch.end());
  }
  return out;
}

TEST(PsnTest, SortedListHasOneEntryPerTokenOccurrence) {
  Psn psn(DatasetKind::kDirty, BlockingOptions{});
  psn.OnIncrement({Raw(0, 0, "alpha beta"), Raw(1, 0, "beta gamma")});
  psn.OnStreamEnd();
  EXPECT_EQ(psn.SortedListSize(), 4u);
}

TEST(PsnTest, AdjacentTokensPairUp) {
  // "aardvark" sorts next to "aardwolf": their owners meet at window 1.
  Psn psn(DatasetKind::kDirty, BlockingOptions{});
  psn.OnIncrement({Raw(0, 0, "aardvark"), Raw(1, 0, "aardwolf"),
                   Raw(2, 0, "zebra")});
  psn.OnStreamEnd();
  const auto emitted = DrainAll(psn);
  ASSERT_FALSE(emitted.empty());
  std::set<uint64_t> keys;
  for (const auto& c : emitted) keys.insert(c.Key());
  EXPECT_TRUE(keys.count(PairKey(0, 1)));
}

TEST(PsnTest, GlobalRanksRepeatedCoOccurrenceHigher) {
  // p0/p1 share two adjacent sort positions ("alpha", "beta"); p2 is
  // adjacent to them only via one token.
  Psn psn(DatasetKind::kDirty, BlockingOptions{}, PsnVariant::kGlobal);
  psn.OnIncrement({Raw(0, 0, "alpha beta"), Raw(1, 0, "alpha beta"),
                   Raw(2, 0, "alpha omega")});
  psn.OnStreamEnd();
  WorkStats stats;
  const auto batch = psn.NextBatch(&stats);
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(PairKey(batch[0].x, batch[0].y), PairKey(0, 1));
}

TEST(PsnTest, LocalEmitsWindowOneFirst) {
  Psn psn(DatasetKind::kDirty, BlockingOptions{}, PsnVariant::kLocal);
  psn.OnIncrement({Raw(0, 0, "alpha beta"), Raw(1, 0, "alpha beta"),
                   Raw(2, 0, "alpha omega")});
  psn.OnStreamEnd();
  const auto emitted = DrainAll(psn);
  ASSERT_GE(emitted.size(), 3u);
  std::set<uint64_t> keys;
  for (const auto& c : emitted) {
    EXPECT_TRUE(keys.insert(c.Key()).second);  // no duplicates
  }
}

TEST(PsnTest, CleanCleanCrossSourceOnly) {
  Psn psn(DatasetKind::kCleanClean, BlockingOptions{});
  psn.OnIncrement({Raw(0, 0, "token alpha"), Raw(1, 0, "token alpha"),
                   Raw(2, 1, "token alpha")});
  psn.OnStreamEnd();
  for (const auto& c : DrainAll(psn)) {
    EXPECT_NE(c.x == 0 || c.x == 1, c.y == 0 || c.y == 1);
  }
}

TEST(PsnTest, NothingBeforeInit) {
  Psn psn(DatasetKind::kDirty, BlockingOptions{});
  psn.OnIncrement({Raw(0, 0, "same token"), Raw(1, 0, "same token")});
  EXPECT_TRUE(DrainAll(psn).empty());  // static mode: needs stream end
}

TEST(PsnTest, GlobalIncrementalModeReinitializes) {
  Psn psn(DatasetKind::kDirty, BlockingOptions{}, PsnVariant::kGlobal,
          BaselineMode::kGlobalIncremental);
  psn.OnIncrement({Raw(0, 0, "dup token1"), Raw(1, 0, "dup token2")});
  const auto first = DrainAll(psn);
  EXPECT_FALSE(first.empty());
  psn.OnIncrement({Raw(2, 0, "dup token3")});
  const auto second = DrainAll(psn);
  std::set<uint64_t> keys;
  for (const auto& c : second) keys.insert(c.Key());
  EXPECT_TRUE(keys.count(PairKey(0, 2)) || keys.count(PairKey(1, 2)));
}

TEST(PsnTest, MaxWindowBoundsPairDistance) {
  // With window 1, profiles whose tokens sort far apart never pair.
  Psn psn(DatasetKind::kDirty, BlockingOptions{}, PsnVariant::kLocal,
          BaselineMode::kStatic, /*max_window=*/1);
  psn.OnIncrement({Raw(0, 0, "aaa"), Raw(1, 0, "mmm"), Raw(2, 0, "zzz")});
  psn.OnStreamEnd();
  const auto emitted = DrainAll(psn);
  std::set<uint64_t> keys;
  for (const auto& c : emitted) keys.insert(c.Key());
  EXPECT_FALSE(keys.count(PairKey(0, 2)));  // distance 2 in the list
}

TEST(PsnTest, Names) {
  Psn local(DatasetKind::kDirty, BlockingOptions{}, PsnVariant::kLocal);
  Psn global(DatasetKind::kDirty, BlockingOptions{}, PsnVariant::kGlobal);
  EXPECT_STREQ(local.name(), "LS-PSN");
  EXPECT_STREQ(global.name(), "GS-PSN");
}

}  // namespace
}  // namespace pier
