// Tests for the multi-threaded RealtimePipeline wrapper: matches are
// delivered via callback, Drain() waits for quiescence, and concurrent
// ingest is safe.

#include <atomic>
#include <mutex>
#include <set>

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "stream/realtime_pipeline.h"

namespace pier {
namespace {

PierOptions Options(DatasetKind kind) {
  PierOptions options;
  options.kind = kind;
  options.strategy = PierStrategy::kIPes;
  return options;
}

TEST(RealtimePipelineTest, FindsDuplicatesAcrossIncrements) {
  const JaccardMatcher matcher(0.5);
  std::mutex mu;
  std::set<uint64_t> found;
  RealtimePipeline pipeline(Options(DatasetKind::kDirty), &matcher,
                            [&](ProfileId a, ProfileId b) {
                              std::lock_guard<std::mutex> lock(mu);
                              found.insert(PairKey(a, b));
                            });
  pipeline.Ingest({EntityProfile(0, 0, {{"n", "john smith lives here"}})});
  pipeline.Ingest({EntityProfile(1, 0, {{"n", "john smith lives there"}}),
                   EntityProfile(2, 0, {{"n", "completely different"}})});
  pipeline.Drain();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_TRUE(found.count(PairKey(0, 1)));
  EXPECT_FALSE(found.count(PairKey(0, 2)));
}

TEST(RealtimePipelineTest, DrainIsIdempotentAndCountsAreConsistent) {
  const JaccardMatcher matcher(0.5);
  std::atomic<int> callbacks{0};
  RealtimePipeline pipeline(Options(DatasetKind::kDirty), &matcher,
                            [&](ProfileId, ProfileId) { ++callbacks; });
  pipeline.Ingest({EntityProfile(0, 0, {{"n", "dup token alpha"}}),
                   EntityProfile(1, 0, {{"n", "dup token alpha"}})});
  pipeline.Drain();
  pipeline.Drain();
  EXPECT_EQ(pipeline.matches_found(), static_cast<uint64_t>(callbacks));
  EXPECT_GE(pipeline.comparisons_processed(), pipeline.matches_found());
  EXPECT_EQ(callbacks.load(), 1);
}

TEST(RealtimePipelineTest, StreamsGeneratedDataset) {
  BibliographicOptions data_options;
  data_options.source0_count = 150;
  data_options.source1_count = 120;
  const Dataset d = GenerateBibliographic(data_options);

  const JaccardMatcher matcher(0.35);
  std::atomic<uint64_t> matches{0};
  RealtimePipeline pipeline(Options(d.kind), &matcher,
                            [&](ProfileId, ProfileId) { ++matches; });
  const auto increments = SplitIntoIncrements(d, 12);
  for (const auto& inc : increments) {
    std::vector<EntityProfile> profiles(
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.end));
    pipeline.Ingest(std::move(profiles));
  }
  pipeline.Drain();
  // Most generated duplicates pass the Jaccard threshold.
  EXPECT_GT(matches.load(), d.truth.size() / 2);
  EXPECT_EQ(matches.load(), pipeline.matches_found());
}

TEST(RealtimePipelineTest, ParallelExecutionFindsDuplicates) {
  // Same workload as StreamsGeneratedDataset, but matched across 4
  // executor threads: quality must not regress. (Exact matched-set
  // equality across runs is not asserted here because batch boundaries
  // depend on wall-clock ingest timing; order determinism is covered
  // by parallel_executor_test.)
  BibliographicOptions data_options;
  data_options.source0_count = 150;
  data_options.source1_count = 120;
  const Dataset d = GenerateBibliographic(data_options);
  const JaccardMatcher matcher(0.35);

  PierOptions options = Options(d.kind);
  options.execution_threads = 4;
  std::mutex mu;
  std::set<uint64_t> found;
  RealtimePipeline pipeline(options, &matcher,
                            [&](ProfileId a, ProfileId b) {
                              std::lock_guard<std::mutex> lock(mu);
                              found.insert(PairKey(a, b));
                            });
  EXPECT_EQ(pipeline.execution_threads(), 4u);
  const auto increments = SplitIntoIncrements(d, 12);
  for (const auto& inc : increments) {
    std::vector<EntityProfile> profiles(
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.end));
    pipeline.Ingest(std::move(profiles));
  }
  pipeline.Drain();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_GT(found.size(), d.truth.size() / 2);
}

TEST(RealtimePipelineTest, ConcurrentIngestWhileMatchingInParallel) {
  // Ingest from the producer thread races the executor's lock-free
  // profile reads; run under TSan this exercises the chunked
  // ProfileStore's stable-address guarantee.
  CensusOptions data_options;
  data_options.num_records = 3000;
  const Dataset d = GenerateCensus(data_options);
  const JaccardMatcher matcher(0.35);
  PierOptions options = Options(d.kind);
  options.execution_threads = 4;
  std::atomic<uint64_t> matches{0};
  RealtimePipeline pipeline(options, &matcher,
                            [&](ProfileId, ProfileId) { ++matches; });
  const auto increments = SplitIntoIncrements(d, 60);
  for (const auto& inc : increments) {
    std::vector<EntityProfile> profiles(
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.end));
    pipeline.Ingest(std::move(profiles));
  }
  pipeline.Drain();
  EXPECT_EQ(matches.load(), pipeline.matches_found());
  EXPECT_GT(matches.load(), 0u);
}

TEST(RealtimePipelineTest, DestructionWhileBusyIsSafe) {
  CensusOptions data_options;
  data_options.num_records = 2000;
  const Dataset d = GenerateCensus(data_options);
  const JaccardMatcher matcher(0.35);
  {
    RealtimePipeline pipeline(Options(d.kind), &matcher,
                              [](ProfileId, ProfileId) {});
    std::vector<EntityProfile> all = d.profiles;
    pipeline.Ingest(std::move(all));
    // Destructor runs while the worker may still be mid-stream.
  }
  SUCCEED();
}

}  // namespace
}  // namespace pier
