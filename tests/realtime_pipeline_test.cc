// Tests for the multi-threaded RealtimePipeline wrapper: matches are
// delivered via callback, Drain() waits for quiescence, and concurrent
// ingest is safe.

#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "persist/checkpoint_manager.h"
#include "stream/realtime_pipeline.h"

namespace pier {
namespace {

PierOptions Options(DatasetKind kind) {
  PierOptions options;
  options.kind = kind;
  options.strategy = PierStrategy::kIPes;
  return options;
}

TEST(RealtimePipelineTest, FindsDuplicatesAcrossIncrements) {
  const JaccardMatcher matcher(0.5);
  std::mutex mu;
  std::set<uint64_t> found;
  RealtimePipeline pipeline(Options(DatasetKind::kDirty), &matcher,
                            [&](ProfileId a, ProfileId b) {
                              std::lock_guard<std::mutex> lock(mu);
                              found.insert(PairKey(a, b));
                            });
  pipeline.Ingest({EntityProfile(0, 0, {{"n", "john smith lives here"}})});
  pipeline.Ingest({EntityProfile(1, 0, {{"n", "john smith lives there"}}),
                   EntityProfile(2, 0, {{"n", "completely different"}})});
  pipeline.Drain();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_TRUE(found.count(PairKey(0, 1)));
  EXPECT_FALSE(found.count(PairKey(0, 2)));
}

TEST(RealtimePipelineTest, DrainIsIdempotentAndCountsAreConsistent) {
  const JaccardMatcher matcher(0.5);
  std::atomic<int> callbacks{0};
  RealtimePipeline pipeline(Options(DatasetKind::kDirty), &matcher,
                            [&](ProfileId, ProfileId) { ++callbacks; });
  pipeline.Ingest({EntityProfile(0, 0, {{"n", "dup token alpha"}}),
                   EntityProfile(1, 0, {{"n", "dup token alpha"}})});
  pipeline.Drain();
  pipeline.Drain();
  EXPECT_EQ(pipeline.matches_found(), static_cast<uint64_t>(callbacks));
  EXPECT_GE(pipeline.comparisons_processed(), pipeline.matches_found());
  EXPECT_EQ(callbacks.load(), 1);
}

TEST(RealtimePipelineTest, StreamsGeneratedDataset) {
  BibliographicOptions data_options;
  data_options.source0_count = 150;
  data_options.source1_count = 120;
  const Dataset d = GenerateBibliographic(data_options);

  const JaccardMatcher matcher(0.35);
  std::atomic<uint64_t> matches{0};
  RealtimePipeline pipeline(Options(d.kind), &matcher,
                            [&](ProfileId, ProfileId) { ++matches; });
  const auto increments = SplitIntoIncrements(d, 12);
  for (const auto& inc : increments) {
    std::vector<EntityProfile> profiles(
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.end));
    pipeline.Ingest(std::move(profiles));
  }
  pipeline.Drain();
  // Most generated duplicates pass the Jaccard threshold.
  EXPECT_GT(matches.load(), d.truth.size() / 2);
  EXPECT_EQ(matches.load(), pipeline.matches_found());
}

TEST(RealtimePipelineTest, ParallelExecutionFindsDuplicates) {
  // Same workload as StreamsGeneratedDataset, but matched across 4
  // executor threads: quality must not regress. (Exact matched-set
  // equality across runs is not asserted here because batch boundaries
  // depend on wall-clock ingest timing; order determinism is covered
  // by parallel_executor_test.)
  BibliographicOptions data_options;
  data_options.source0_count = 150;
  data_options.source1_count = 120;
  const Dataset d = GenerateBibliographic(data_options);
  const JaccardMatcher matcher(0.35);

  PierOptions options = Options(d.kind);
  options.execution_threads = 4;
  std::mutex mu;
  std::set<uint64_t> found;
  RealtimePipeline pipeline(options, &matcher,
                            [&](ProfileId a, ProfileId b) {
                              std::lock_guard<std::mutex> lock(mu);
                              found.insert(PairKey(a, b));
                            });
  EXPECT_EQ(pipeline.execution_threads(), 4u);
  const auto increments = SplitIntoIncrements(d, 12);
  for (const auto& inc : increments) {
    std::vector<EntityProfile> profiles(
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.end));
    pipeline.Ingest(std::move(profiles));
  }
  pipeline.Drain();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_GT(found.size(), d.truth.size() / 2);
}

TEST(RealtimePipelineTest, ConcurrentIngestWhileMatchingInParallel) {
  // Ingest from the producer thread races the executor's lock-free
  // profile reads; run under TSan this exercises the chunked
  // ProfileStore's stable-address guarantee.
  CensusOptions data_options;
  data_options.num_records = 3000;
  const Dataset d = GenerateCensus(data_options);
  const JaccardMatcher matcher(0.35);
  PierOptions options = Options(d.kind);
  options.execution_threads = 4;
  std::atomic<uint64_t> matches{0};
  RealtimePipeline pipeline(options, &matcher,
                            [&](ProfileId, ProfileId) { ++matches; });
  const auto increments = SplitIntoIncrements(d, 60);
  for (const auto& inc : increments) {
    std::vector<EntityProfile> profiles(
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.end));
    pipeline.Ingest(std::move(profiles));
  }
  pipeline.Drain();
  EXPECT_EQ(matches.load(), pipeline.matches_found());
  EXPECT_GT(matches.load(), 0u);
}

TEST(RealtimePipelineTest, DestructionWhileBusyIsSafe) {
  CensusOptions data_options;
  data_options.num_records = 2000;
  const Dataset d = GenerateCensus(data_options);
  const JaccardMatcher matcher(0.35);
  {
    RealtimePipeline pipeline(Options(d.kind), &matcher,
                              [](ProfileId, ProfileId) {});
    std::vector<EntityProfile> all = d.profiles;
    pipeline.Ingest(std::move(all));
    // Destructor runs while the worker may still be mid-stream.
  }
  SUCCEED();
}

TEST(RealtimePipelineTest, CheckpointAndRestoreAcrossInstances) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("pier_realtime_ckpt_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  BibliographicOptions data_options;
  data_options.source0_count = 80;
  data_options.source1_count = 70;
  const Dataset d = GenerateBibliographic(data_options);
  const JaccardMatcher matcher(0.35);
  const auto increments = SplitIntoIncrements(d, 10);
  const auto slice = [&](const Increment& inc) {
    return std::vector<EntityProfile>(
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.end));
  };

  // First instance: ingest half the stream with checkpointing on,
  // drain so the checkpointed state is quiescent (no in-flight batch
  // to lose), then checkpoint the 5th ingest and shut down.
  {
    RealtimePipeline pipeline(Options(d.kind), &matcher,
                              [](ProfileId, ProfileId) {});
    pipeline.EnableCheckpoints(dir.string(), /*every=*/5, /*keep=*/2);
    for (size_t i = 0; i + 1 < 5; ++i) pipeline.Ingest(slice(increments[i]));
    pipeline.Drain();
    pipeline.Ingest(slice(increments[4]));  // 5th ingest -> checkpoint
    pipeline.Drain();
  }
  const auto latest = persist::CheckpointManager::FindLatest(dir.string());
  ASSERT_TRUE(latest.has_value());

  // Second instance: restore, feed the rest, and find duplicates that
  // pair a pre-checkpoint profile with a post-checkpoint one -- the
  // restored blocking/prioritizer state is what makes them reachable.
  std::mutex mu;
  std::set<uint64_t> found;
  RealtimePipeline restored(Options(d.kind), &matcher,
                            [&](ProfileId a, ProfileId b) {
                              std::lock_guard<std::mutex> lock(mu);
                              found.insert(PairKey(a, b));
                            });
  {
    std::ifstream snapshot(*latest, std::ios::binary);
    std::string error;
    ASSERT_TRUE(restored.RestoreFromSnapshot(snapshot, &error)) << error;
  }
  const ProfileId boundary = static_cast<ProfileId>(increments[5].begin);
  for (size_t i = 5; i < increments.size(); ++i) {
    restored.Ingest(slice(increments[i]));
  }
  restored.Drain();
  size_t cross_matches = 0;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const uint64_t key : found) {
      const auto a = static_cast<ProfileId>(key >> 32);
      const auto b = static_cast<ProfileId>(key);
      if ((a < boundary) != (b < boundary)) ++cross_matches;
    }
  }
  EXPECT_GT(cross_matches, 0u);

  // A pipeline that already ingested refuses to restore.
  {
    std::ifstream snapshot(*latest, std::ios::binary);
    std::string error;
    EXPECT_FALSE(restored.RestoreFromSnapshot(snapshot, &error));
    EXPECT_FALSE(error.empty());
  }
  fs::remove_all(dir);
}

TEST(RealtimePipelineTest, IngestAfterStopIsRejected) {
  const JaccardMatcher matcher(0.5);
  RealtimePipeline pipeline(Options(DatasetKind::kDirty), &matcher,
                            [](ProfileId, ProfileId) {});
  EXPECT_TRUE(
      pipeline.Ingest({EntityProfile(0, 0, {{"n", "alpha beta gamma"}})}));
  pipeline.Drain();
  pipeline.Stop();
  // Regression test: a stopped pipeline must reject the increment (the
  // worker is gone; silently enqueueing it would drop it forever).
  EXPECT_FALSE(
      pipeline.Ingest({EntityProfile(1, 0, {{"n", "alpha beta gamma"}})}));
  EXPECT_EQ(pipeline.ingests(), 1u);
  pipeline.Drain();  // returns immediately, no deadlock
}

TEST(RealtimePipelineTest, IngestAfterFailedRestoreIsRejected) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("pier_realtime_poison_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  const JaccardMatcher matcher(0.5);
  {
    PierOptions options = Options(DatasetKind::kDirty);
    options.strategy = PierStrategy::kIPes;
    RealtimePipeline pipeline(options, &matcher, [](ProfileId, ProfileId) {});
    pipeline.EnableCheckpoints(dir.string(), /*every=*/1, /*keep=*/1);
    pipeline.Ingest({EntityProfile(0, 0, {{"n", "alpha beta"}}),
                     EntityProfile(1, 0, {{"n", "alpha beta"}})});
    pipeline.Drain();
  }
  const auto latest = persist::CheckpointManager::FindLatest(dir.string());
  ASSERT_TRUE(latest.has_value());

  // Mismatched options: the snapshot's global sections restore, then
  // the engine fingerprint check fails mid-restore. The pipeline is
  // partially restored -- it must reject further ingests instead of
  // producing wrong verdicts from the half-restored state.
  PierOptions options = Options(DatasetKind::kDirty);
  options.strategy = PierStrategy::kIPcs;
  RealtimePipeline poisoned(options, &matcher, [](ProfileId, ProfileId) {});
  {
    std::ifstream snapshot(*latest, std::ios::binary);
    std::string error;
    EXPECT_FALSE(poisoned.RestoreFromSnapshot(snapshot, &error));
    EXPECT_NE(error.find("poisoned"), std::string::npos) << error;
  }
  EXPECT_FALSE(poisoned.Ingest({EntityProfile(0, 0, {{"n", "alpha beta"}})}));
  fs::remove_all(dir);
}

TEST(RealtimePipelineTest, QueueDepthAndFreshnessMetrics) {
  obs::MetricsRegistry registry;
  const JaccardMatcher matcher(0.5);
  PierOptions options = Options(DatasetKind::kDirty);
  options.metrics = &registry;
  RealtimePipeline pipeline(options, &matcher, [](ProfileId, ProfileId) {});
  pipeline.Ingest({EntityProfile(0, 0, {{"n", "dup token alpha"}}),
                   EntityProfile(1, 0, {{"n", "dup token alpha"}})});
  pipeline.Ingest({EntityProfile(2, 0, {{"n", "dup token alpha"}})});
  pipeline.Drain();
  // Quiescent: the microbatch queue is empty and every ingest has been
  // closed out with an ingest-to-first-verdict latency sample.
  EXPECT_EQ(registry.GetGauge("realtime.queue_depth")->Value(), 0.0);
  EXPECT_EQ(registry.GetGauge("realtime.pending_ingests")->Value(), 0.0);
  const obs::Histogram* latency =
      registry.GetHistogram("realtime.ingest_to_first_verdict_ns");
  EXPECT_EQ(latency->Count(), 2u);
  EXPECT_GT(latency->Sum(), 0u);
  EXPECT_EQ(registry.GetCounter("realtime.ingests")->Value(), 2u);
}

}  // namespace
}  // namespace pier
