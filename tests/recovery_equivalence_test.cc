// Recovery-equivalence golden tests (the checkpoint subsystem's
// correctness contract): kill a run after any increment, restore from
// the durable snapshot, continue -- the verdict stream, the emitted
// comparisons, and the final progressive curve must be identical to an
// uninterrupted run. Exercised across all five PIER prioritizers
// (including the stochastic SPER-SK, whose RNG state rides in the
// snapshot) and both snapshot-capable baselines, resuming from every
// checkpoint
// (including the pre-stream seed and the final increment), plus
// rejection of tampered and mismatched snapshots.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/i_base.h"
#include "baseline/pbs.h"
#include "datagen/generators.h"
#include "similarity/matcher.h"
#include "stream/pier_adapter.h"
#include "stream/stream_simulator.h"

namespace pier {
namespace {

namespace fs = std::filesystem;

Dataset TinyDataset() {
  BibliographicOptions options;
  options.source0_count = 120;
  options.source1_count = 100;
  options.seed = 11;
  return GenerateBibliographic(options);
}

using AlgorithmFactory = std::function<std::unique_ptr<ErAlgorithm>(
    const Dataset&)>;

struct AlgorithmCase {
  const char* label;
  AlgorithmFactory make;
};

std::unique_ptr<ErAlgorithm> MakePier(const Dataset& d,
                                      PierStrategy strategy) {
  PierOptions options;
  options.kind = d.kind;
  options.strategy = strategy;
  return std::make_unique<PierAdapter>(options);
}

std::vector<AlgorithmCase> AllCases() {
  return {
      {"I-PCS",
       [](const Dataset& d) { return MakePier(d, PierStrategy::kIPcs); }},
      {"I-PBS",
       [](const Dataset& d) { return MakePier(d, PierStrategy::kIPbs); }},
      {"I-PES",
       [](const Dataset& d) { return MakePier(d, PierStrategy::kIPes); }},
      {"SPER-SK",
       [](const Dataset& d) { return MakePier(d, PierStrategy::kSperSk); }},
      {"FB-PCS",
       [](const Dataset& d) { return MakePier(d, PierStrategy::kFbPcs); }},
      {"PBS",
       [](const Dataset& d) {
         return std::make_unique<Pbs>(d.kind, BlockingOptions());
       }},
      {"I-BASE",
       [](const Dataset& d) {
         return std::make_unique<IBase>(d.kind, BlockingOptions());
       }},
  };
}

// Recovery equivalence demands the *modeled* cost meter: measured
// wall-clock timings are inherently noisy across runs.
SimulatorOptions BaseOptions(double rate) {
  SimulatorOptions options;
  options.num_increments = 10;
  options.increments_per_second = rate;
  options.cost_mode = CostMeter::Mode::kModeled;
  options.curve_granularity = 1;
  return options;
}

void ExpectSameResult(const RunResult& expected, const RunResult& actual,
                      const std::string& context) {
  EXPECT_EQ(expected.comparisons_executed, actual.comparisons_executed)
      << context;
  EXPECT_EQ(expected.matches_found, actual.matches_found) << context;
  EXPECT_EQ(expected.matcher_positives, actual.matcher_positives) << context;
  EXPECT_EQ(expected.matcher_true_positives, actual.matcher_true_positives)
      << context;
  EXPECT_EQ(expected.stalled_ticks, actual.stalled_ticks) << context;
  EXPECT_EQ(expected.stall_aborted, actual.stall_aborted) << context;
  EXPECT_EQ(expected.stream_consumed_at, actual.stream_consumed_at)
      << context;
  EXPECT_EQ(expected.end_time, actual.end_time) << context;
  ASSERT_EQ(expected.curve.points().size(), actual.curve.points().size())
      << context;
  for (size_t i = 0; i < expected.curve.points().size(); ++i) {
    const CurvePoint& e = expected.curve.points()[i];
    const CurvePoint& a = actual.curve.points()[i];
    EXPECT_EQ(e.time, a.time) << context << " point " << i;
    EXPECT_EQ(e.comparisons, a.comparisons) << context << " point " << i;
    EXPECT_EQ(e.matches_found, a.matches_found) << context << " point " << i;
  }
  // The cluster-level curve must survive checkpoint/resume bit-for-bit
  // too: the recall tracker restores from its canonical partition.
  EXPECT_EQ(expected.total_cluster_pairs, actual.total_cluster_pairs)
      << context;
  ASSERT_EQ(expected.cluster_curve.points().size(),
            actual.cluster_curve.points().size())
      << context;
  for (size_t i = 0; i < expected.cluster_curve.points().size(); ++i) {
    const CurvePoint& e = expected.cluster_curve.points()[i];
    const CurvePoint& a = actual.cluster_curve.points()[i];
    EXPECT_EQ(e.time, a.time) << context << " cluster point " << i;
    EXPECT_EQ(e.comparisons, a.comparisons)
        << context << " cluster point " << i;
    EXPECT_EQ(e.matches_found, a.matches_found)
        << context << " cluster point " << i;
  }
}

std::vector<std::string> CheckpointFiles(const fs::path& dir) {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

class RecoveryEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pier_recovery_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // For one algorithm: run uninterrupted (no checkpoints), then run
  // with checkpoints kept at every multiple of 3 (plus seed 0 and the
  // final increment), then resume from every checkpoint and demand the
  // identical result.
  void CheckAlgorithm(const AlgorithmCase& algo, const Dataset& dataset,
                      double rate) {
    const fs::path dir = dir_ / algo.label;
    SimulatorOptions plain = BaseOptions(rate);
    const StreamSimulator simulator(&dataset, plain);
    const auto matcher = MakeMatcher("JS", 0.5);

    auto baseline_algo = algo.make(dataset);
    const RunResult baseline = simulator.Run(*baseline_algo, *matcher);
    EXPECT_GT(baseline.comparisons_executed, 0u) << algo.label;
    EXPECT_GT(baseline.matches_found, 0u) << algo.label;

    SimulatorOptions with_ckpt = BaseOptions(rate);
    with_ckpt.checkpoint_dir = dir.string();
    with_ckpt.checkpoint_every = 3;
    with_ckpt.checkpoint_keep = 0;  // keep every checkpoint
    const StreamSimulator ckpt_simulator(&dataset, with_ckpt);
    auto ckpt_algo = algo.make(dataset);
    const RunResult checkpointed = ckpt_simulator.Run(*ckpt_algo, *matcher);
    ExpectSameResult(baseline, checkpointed,
                     std::string(algo.label) + " checkpointing run");

    const auto files = CheckpointFiles(dir);
    // Seed (0), 3, 6, 9, and the always-written final increment (10).
    ASSERT_EQ(files.size(), 5u) << algo.label;
    for (const std::string& file : files) {
      std::ifstream snapshot(file, std::ios::binary);
      ASSERT_TRUE(snapshot.is_open()) << file;
      auto resumed_algo = algo.make(dataset);
      std::string error;
      const auto resumed =
          simulator.Resume(*resumed_algo, *matcher, snapshot, &error);
      ASSERT_TRUE(resumed.has_value()) << algo.label << " " << file << ": "
                                       << error;
      ExpectSameResult(baseline, *resumed,
                       std::string(algo.label) + " resume from " + file);
    }
  }

  fs::path dir_;
};

TEST_F(RecoveryEquivalenceTest, StaticStream) {
  const Dataset dataset = TinyDataset();
  for (const auto& algo : AllCases()) {
    CheckAlgorithm(algo, dataset, /*rate=*/0.0);
  }
}

TEST_F(RecoveryEquivalenceTest, PacedStream) {
  const Dataset dataset = TinyDataset();
  for (const auto& algo : AllCases()) {
    CheckAlgorithm(algo, dataset, /*rate=*/200.0);
  }
}

TEST_F(RecoveryEquivalenceTest, ResumeWithMoreThreadsSameCurve) {
  // Verdict order is deterministic for every execution thread count,
  // so a resume on 2 threads must reproduce the 1-thread curve. This
  // variant also runs under TSan in CI.
  const Dataset dataset = TinyDataset();
  SimulatorOptions with_ckpt = BaseOptions(0.0);
  with_ckpt.checkpoint_dir = dir_.string();
  with_ckpt.checkpoint_every = 4;
  with_ckpt.checkpoint_keep = 0;
  const StreamSimulator ckpt_simulator(&dataset, with_ckpt);
  const auto matcher = MakeMatcher("JS", 0.5);
  auto algo = MakePier(dataset, PierStrategy::kIPcs);
  const RunResult baseline = ckpt_simulator.Run(*algo, *matcher);

  SimulatorOptions threaded = BaseOptions(0.0);
  threaded.execution_threads = 2;
  const StreamSimulator resumed_simulator(&dataset, threaded);
  const auto files = CheckpointFiles(dir_);
  ASSERT_GE(files.size(), 2u);
  std::ifstream snapshot(files[1], std::ios::binary);
  auto resumed_algo = MakePier(dataset, PierStrategy::kIPcs);
  std::string error;
  const auto resumed =
      resumed_simulator.Resume(*resumed_algo, *matcher, snapshot, &error);
  ASSERT_TRUE(resumed.has_value()) << error;
  ExpectSameResult(baseline, *resumed, "threaded resume");
}

TEST_F(RecoveryEquivalenceTest, TamperedSnapshotRejected) {
  const Dataset dataset = TinyDataset();
  SimulatorOptions with_ckpt = BaseOptions(0.0);
  with_ckpt.checkpoint_dir = dir_.string();
  with_ckpt.checkpoint_every = 5;
  with_ckpt.checkpoint_keep = 0;
  const StreamSimulator simulator(&dataset, with_ckpt);
  const auto matcher = MakeMatcher("JS", 0.5);
  auto algo = MakePier(dataset, PierStrategy::kIPcs);
  (void)simulator.Run(*algo, *matcher);
  const auto files = CheckpointFiles(dir_);
  ASSERT_FALSE(files.empty());

  std::string bytes;
  {
    std::ifstream in(files.back(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  ASSERT_GT(bytes.size(), 200u);
  // Flip one byte in every 97-byte stride across the whole file; each
  // variant must be rejected with a diagnostic, never silently loaded.
  for (size_t i = 0; i < bytes.size(); i += 97) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    std::istringstream snapshot(corrupt);
    auto fresh = MakePier(dataset, PierStrategy::kIPcs);
    std::string error;
    const auto resumed =
        simulator.Resume(*fresh, *matcher, snapshot, &error);
    EXPECT_FALSE(resumed.has_value()) << "flip at byte " << i;
    EXPECT_FALSE(error.empty()) << "flip at byte " << i;
  }
  // Truncations at every 97-byte stride, too.
  for (size_t len = 0; len < bytes.size(); len += 97) {
    std::istringstream snapshot(bytes.substr(0, len));
    auto fresh = MakePier(dataset, PierStrategy::kIPcs);
    std::string error;
    const auto resumed =
        simulator.Resume(*fresh, *matcher, snapshot, &error);
    EXPECT_FALSE(resumed.has_value()) << "truncated to " << len;
    EXPECT_FALSE(error.empty()) << "truncated to " << len;
  }
}

TEST_F(RecoveryEquivalenceTest, MismatchedConfigurationRejected) {
  const Dataset dataset = TinyDataset();
  SimulatorOptions with_ckpt = BaseOptions(0.0);
  with_ckpt.checkpoint_dir = dir_.string();
  with_ckpt.checkpoint_every = 5;
  const StreamSimulator simulator(&dataset, with_ckpt);
  const auto matcher = MakeMatcher("JS", 0.5);
  auto algo = MakePier(dataset, PierStrategy::kIPcs);
  (void)simulator.Run(*algo, *matcher);
  const auto files = CheckpointFiles(dir_);
  ASSERT_FALSE(files.empty());
  const std::string file = files.back();

  // Different increment split.
  {
    SimulatorOptions other = BaseOptions(0.0);
    other.num_increments = 7;
    const StreamSimulator mismatched(&dataset, other);
    std::ifstream snapshot(file, std::ios::binary);
    auto fresh = MakePier(dataset, PierStrategy::kIPcs);
    std::string error;
    EXPECT_FALSE(
        mismatched.Resume(*fresh, *matcher, snapshot, &error).has_value());
    EXPECT_FALSE(error.empty());
  }
  // Different algorithm.
  {
    std::ifstream snapshot(file, std::ios::binary);
    auto fresh = MakePier(dataset, PierStrategy::kIPes);
    std::string error;
    EXPECT_FALSE(
        simulator.Resume(*fresh, *matcher, snapshot, &error).has_value());
    EXPECT_NE(error.find("algorithm"), std::string::npos) << error;
  }
  // Different matcher.
  {
    std::ifstream snapshot(file, std::ios::binary);
    auto fresh = MakePier(dataset, PierStrategy::kIPcs);
    const auto other_matcher = MakeMatcher("ED", 0.5);
    std::string error;
    EXPECT_FALSE(simulator.Resume(*fresh, *other_matcher, snapshot, &error)
                     .has_value());
    EXPECT_NE(error.find("matcher"), std::string::npos) << error;
  }
  // An algorithm without snapshot support reports it.
  {
    std::ifstream snapshot(file, std::ios::binary);
    class NoSnapshotAlgo : public IBase {
     public:
      NoSnapshotAlgo() : IBase(DatasetKind::kCleanClean, BlockingOptions()) {}
      bool SupportsSnapshot() const override { return false; }
      bool Restore(const persist::SnapshotReader& reader,
                   std::string* error) override {
        return ErAlgorithm::Restore(reader, error);
      }
      const char* name() const override { return "I-PCS"; }  // pass meta
    };
    NoSnapshotAlgo fresh;
    std::string error;
    EXPECT_FALSE(
        simulator.Resume(fresh, *matcher, snapshot, &error).has_value());
    EXPECT_NE(error.find("snapshot"), std::string::npos) << error;
  }
}

}  // namespace
}  // namespace pier
