// Tests for the sharded worker/combiner ingest path: the routing
// invariant (every block key owned by exactly one shard) must make the
// delivered verdict set and the final clusters identical for every
// shard count -- including the N = 1 case RealtimePipeline wraps --
// and the bounded queues, multi-producer ingest, and checkpoint/resume
// must hold up under concurrency (this binary runs under TSan in CI).

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "persist/checkpoint_manager.h"
#include "similarity/parallel_executor.h"
#include "stream/shard_queue.h"
#include "stream/sharded_pipeline.h"

namespace pier {
namespace {

// ---------------------------------------------------------------------------
// ShardQueue

TEST(ShardQueueTest, FifoOrderAndTryPop) {
  ShardQueue<int> queue(4);
  int out = 0;
  EXPECT_FALSE(queue.TryPop(&out));
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_TRUE(queue.Push(3));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(queue.TryPop(&out));
}

TEST(ShardQueueTest, CloseDrainsQueuedItemsThenRejects) {
  ShardQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(7));
  queue.Close();
  EXPECT_FALSE(queue.Push(8));
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));  // queued before the close: delivered
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(queue.Pop(&out));  // closed and empty
  EXPECT_FALSE(queue.TryPop(&out));
}

TEST(ShardQueueTest, PushBlocksOnFullQueueUntilPop) {
  ShardQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  std::atomic<bool> second_push_done{false};
  uint64_t wait_ns = 0;
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2, &wait_ns));
    second_push_done.store(true);
  });
  // The producer must be blocked: the queue is at capacity.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_push_done.load());
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  producer.join();
  EXPECT_TRUE(second_push_done.load());
  EXPECT_GT(wait_ns, 0u);  // the blocked time was measured
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(ShardQueueTest, CloseWakesBlockedProducer) {
  ShardQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  std::thread producer([&] {
    int item = 2;
    EXPECT_FALSE(queue.Push(item));  // woken by Close, rejected
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  producer.join();
}

// Property: under concurrent producers, consumers, and a mid-stream
// Close(), every successfully pushed item is delivered exactly once
// (no loss, no duplication), per-producer successes form a prefix of
// that producer's sequence, and nothing is accepted after the close.
TEST(ShardQueueTest, CloseDrainPropertyUnderConcurrency) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 400;
  ShardQueue<std::pair<int, int>> queue(4);

  std::array<std::atomic<int>, kProducers> pushed{};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (!queue.Push({p, i})) {
          // Closed: every later push must also be rejected, so the
          // successes are exactly the prefix [0, i).
          EXPECT_FALSE(queue.Push({p, i}));
          return;
        }
        pushed[p].fetch_add(1);
      }
    });
  }
  std::mutex consumed_mu;
  std::vector<std::vector<int>> consumed(kProducers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::pair<int, int> item;
      std::vector<std::vector<int>> local(kProducers);
      while (queue.Pop(&item)) local[item.first].push_back(item.second);
      std::lock_guard<std::mutex> lock(consumed_mu);
      for (int p = 0; p < kProducers; ++p) {
        consumed[p].insert(consumed[p].end(), local[p].begin(),
                           local[p].end());
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  std::pair<int, int> leftover;
  EXPECT_FALSE(queue.TryPop(&leftover));  // closed and fully drained
  for (int p = 0; p < kProducers; ++p) {
    // Delivered set == pushed prefix, each item exactly once.
    std::vector<int> seqs = consumed[p];
    std::sort(seqs.begin(), seqs.end());
    ASSERT_EQ(static_cast<int>(seqs.size()), pushed[p].load()) << "p=" << p;
    for (int i = 0; i < static_cast<int>(seqs.size()); ++i) {
      ASSERT_EQ(seqs[i], i) << "p=" << p;
    }
  }
}

// ---------------------------------------------------------------------------
// Shard-vs-single equivalence

// Equivalence requires a deterministic executed set: the exact
// executed filter (no Bloom false positives, which are
// emission-order-dependent) and no block purging (purge timing depends
// on ingest cadence, which differs per shard count).
PierOptions EquivalenceOptions(DatasetKind kind) {
  PierOptions options;
  options.kind = kind;
  options.strategy = PierStrategy::kIPes;
  options.exact_executed_filter = true;
  options.blocking.max_block_size = 0;
  return options;
}

struct VerdictLog {
  std::mutex mu;
  std::set<uint64_t> executed;
  std::set<uint64_t> matched;
  uint64_t delivered = 0;
};

// The single-engine reference: one PierPipeline driven to exhaustion,
// the ground truth the sharded runs must reproduce exactly.
void RunReference(const Dataset& d, size_t increments, const Matcher& matcher,
                  VerdictLog* log) {
  PierPipeline pipeline(EquivalenceOptions(d.kind));
  ParallelMatchExecutor executor(&matcher, 1, nullptr);
  for (const auto& inc : SplitIntoIncrements(d, increments)) {
    std::vector<EntityProfile> profiles(
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.end));
    pipeline.Ingest(std::move(profiles));
  }
  pipeline.NotifyStreamEnd();
  for (;;) {
    const std::vector<Comparison> batch = pipeline.EmitBatch(1024);
    if (batch.empty()) break;
    const std::vector<MatchVerdict> verdicts =
        executor.ExecuteVerdicts(batch, pipeline.profiles());
    for (size_t i = 0; i < batch.size(); ++i) {
      log->executed.insert(batch[i].Key());
      ++log->delivered;
      if (verdicts[i].is_match) log->matched.insert(batch[i].Key());
    }
  }
}

void RunSharded(const Dataset& d, size_t increments, const Matcher& matcher,
                size_t shard_count,
                std::map<ProfileId, ProfileId>* final_clusters,
                VerdictLog* log) {
  ShardedOptions options;
  options.pipeline = EquivalenceOptions(d.kind);
  options.shard_count = shard_count;
  options.queue_capacity = 4;  // small: exercises backpressure
  options.on_verdict = [log](ProfileId a, ProfileId b, bool) {
    std::lock_guard<std::mutex> lock(log->mu);
    log->executed.insert(PairKey(a, b));
    ++log->delivered;
  };
  ShardedPipeline pipeline(options, &matcher,
                           [log](ProfileId a, ProfileId b) {
                             std::lock_guard<std::mutex> lock(log->mu);
                             log->matched.insert(PairKey(a, b));
                           });
  for (const auto& inc : SplitIntoIncrements(d, increments)) {
    std::vector<EntityProfile> profiles(
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
        d.profiles.begin() + static_cast<ptrdiff_t>(inc.end));
    EXPECT_TRUE(pipeline.Ingest(std::move(profiles)));
  }
  pipeline.NotifyStreamEnd();
  pipeline.Drain();
  if (final_clusters != nullptr) {
    for (ProfileId id = 0; id < d.profiles.size(); ++id) {
      (*final_clusters)[id] = pipeline.ClusterIdOf(id);
    }
  }
  EXPECT_EQ(pipeline.clusters().universe_size(), d.profiles.size());
}

TEST(ShardedPipelineTest, EquivalentToSinglePipelineCleanClean) {
  BibliographicOptions data_options;
  data_options.source0_count = 90;
  data_options.source1_count = 80;
  const Dataset d = GenerateBibliographic(data_options);
  const JaccardMatcher matcher(0.35);

  VerdictLog reference;
  RunReference(d, 9, matcher, &reference);
  ASSERT_FALSE(reference.executed.empty());
  ASSERT_FALSE(reference.matched.empty());

  std::map<ProfileId, ProfileId> one_shard_clusters;
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    std::map<ProfileId, ProfileId> clusters;
    VerdictLog log;
    RunSharded(d, 9, matcher, shards, &clusters, &log);
    // Same executed comparison set, each delivered exactly once, and
    // the same match set -- the routing invariant at work.
    EXPECT_EQ(log.executed, reference.executed);
    EXPECT_EQ(log.delivered, log.executed.size());
    EXPECT_EQ(log.matched, reference.matched);
    if (shards == 1) {
      one_shard_clusters = clusters;
    } else {
      EXPECT_EQ(clusters, one_shard_clusters);
    }
  }
}

TEST(ShardedPipelineTest, EquivalentToSinglePipelineDirty) {
  CensusOptions data_options;
  data_options.num_records = 260;
  const Dataset d = GenerateCensus(data_options);
  const JaccardMatcher matcher(0.4);

  VerdictLog reference;
  RunReference(d, 13, matcher, &reference);
  ASSERT_FALSE(reference.executed.empty());

  std::map<ProfileId, ProfileId> one_shard_clusters;
  for (const size_t shards : {size_t{1}, size_t{3}, size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    std::map<ProfileId, ProfileId> clusters;
    VerdictLog log;
    RunSharded(d, 13, matcher, shards, &clusters, &log);
    EXPECT_EQ(log.executed, reference.executed);
    EXPECT_EQ(log.delivered, log.executed.size());
    EXPECT_EQ(log.matched, reference.matched);
    if (shards == 1) {
      one_shard_clusters = clusters;
    } else {
      EXPECT_EQ(clusters, one_shard_clusters);
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan money test)

TEST(ShardedPipelineTest, MultiProducerIngestWithConcurrentQueries) {
  CensusOptions data_options;
  data_options.num_records = 400;
  const Dataset d = GenerateCensus(data_options);
  const JaccardMatcher matcher(0.4);

  ShardedOptions options;
  options.pipeline.kind = d.kind;
  options.pipeline.strategy = PierStrategy::kIPes;
  options.shard_count = 2;
  options.queue_capacity = 2;  // tiny: producers hit backpressure
  std::atomic<uint64_t> callbacks{0};
  ShardedPipeline pipeline(options, &matcher,
                           [&](ProfileId, ProfileId) { ++callbacks; });

  // Four producers race increments in; the router assigns dense ids
  // (ground-truth identity is irrelevant here -- this test is about
  // memory safety and accounting, not quality).
  constexpr size_t kProducers = 4;
  std::vector<std::thread> producers;
  std::atomic<size_t> next_chunk{0};
  const auto increments = SplitIntoIncrements(d, 40);
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (;;) {
        const size_t chunk = next_chunk.fetch_add(1);
        if (chunk >= increments.size()) return;
        std::vector<EntityProfile> profiles;
        for (size_t i = increments[chunk].begin; i < increments[chunk].end;
             ++i) {
          EntityProfile profile = d.profiles[i];
          profile.id = kInvalidProfileId;  // router assigns
          profiles.push_back(std::move(profile));
        }
        EXPECT_TRUE(pipeline.Ingest(std::move(profiles)));
      }
    });
  }
  std::atomic<bool> stop_queries{false};
  std::thread querier([&] {
    uint64_t checksum = 0;
    while (!stop_queries.load()) {
      const size_t universe = pipeline.clusters().universe_size();
      for (ProfileId id = 0; id < universe; id += 7) {
        checksum += pipeline.ClusterIdOf(id);
        checksum += pipeline.ClusterOf(id).members.size();
      }
    }
    EXPECT_GE(checksum, 0u);
  });
  for (auto& producer : producers) producer.join();
  pipeline.Drain();
  stop_queries.store(true);
  querier.join();

  EXPECT_EQ(pipeline.clusters().universe_size(), d.profiles.size());
  EXPECT_EQ(pipeline.matches_found(), callbacks.load());
  EXPECT_GE(pipeline.comparisons_processed(), pipeline.matches_found());
  // Post-drain queries are stable.
  for (ProfileId id = 0; id < d.profiles.size(); ++id) {
    EXPECT_LE(pipeline.ClusterIdOf(id), id);
  }
}

TEST(ShardedPipelineTest, DestructionWhileBusyIsSafe) {
  CensusOptions data_options;
  data_options.num_records = 300;
  const Dataset d = GenerateCensus(data_options);
  const JaccardMatcher matcher(0.4);
  ShardedOptions options;
  options.pipeline.kind = d.kind;
  options.shard_count = 3;
  options.queue_capacity = 2;
  {
    ShardedPipeline pipeline(options, &matcher, [](ProfileId, ProfileId) {});
    std::vector<EntityProfile> profiles = d.profiles;
    EXPECT_TRUE(pipeline.Ingest(std::move(profiles)));
    // Destroyed mid-stream: workers must stop cleanly.
  }
}

// ---------------------------------------------------------------------------
// Lifecycle rejection diagnostics

TEST(ShardedPipelineTest, IngestAfterStopIsRejected) {
  const JaccardMatcher matcher(0.5);
  ShardedOptions options;
  options.shard_count = 2;
  ShardedPipeline pipeline(options, &matcher, [](ProfileId, ProfileId) {});
  EXPECT_TRUE(pipeline.Ingest({EntityProfile(0, 0, {{"n", "alpha beta"}})}));
  pipeline.Drain();
  pipeline.Stop();
  pipeline.Stop();  // idempotent
  EXPECT_FALSE(pipeline.Ingest({EntityProfile(1, 0, {{"n", "alpha beta"}})}));
  pipeline.Drain();  // returns immediately after Stop
}

// A matcher that parks the shard worker inside the match stage until
// released, so a test can hold a microbatch queue at capacity and race
// Stop() against a backpressure-blocked Ingest.
class BlockingMatcher : public Matcher {
 public:
  BlockingMatcher() : Matcher(0.5) {}

  double Similarity(const EntityProfile&, const EntityProfile&) const override {
    entered_.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return released_; });
    return 1.0;
  }
  uint64_t CostUnits(const EntityProfile&,
                     const EntityProfile&) const override {
    return 1;
  }
  const char* name() const override { return "BLOCK"; }

  void WaitUntilEntered() const {
    while (!entered_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  void Release() const {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  mutable std::atomic<bool> entered_{false};
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable bool released_ = false;
};

// Regression: a Stop() racing an Ingest whose Push was blocked on
// backpressure used to drop the microbatch while Ingest still reported
// success (ingest counter bumped, checkpoint cadence advanced, latency
// sample recorded -- for an increment that never reached a worker).
// The rejection must be surfaced to the producer.
TEST(ShardedPipelineTest, StopDuringBackpressuredIngestReportsFailure) {
  const BlockingMatcher matcher;
  ShardedOptions options;
  options.shard_count = 1;
  options.queue_capacity = 1;
  ShardedPipeline pipeline(options, &matcher, [](ProfileId, ProfileId) {});
  // First increment: produces one comparison; the worker pops it and
  // parks inside the matcher, so nothing further is popped.
  ASSERT_TRUE(pipeline.Ingest({EntityProfile(0, 0, {{"n", "alpha beta"}}),
                               EntityProfile(1, 0, {{"n", "alpha beta"}})}));
  matcher.WaitUntilEntered();
  // Second increment: fills the (now empty) queue back to capacity.
  ASSERT_TRUE(pipeline.Ingest({EntityProfile(2, 0, {{"n", "gamma delta"}})}));
  // Third increment: blocks in Push behind the full queue. The worker
  // cannot drain it -- it is parked in the matcher -- so this Ingest
  // stays blocked until Stop() closes the queues and rejects it.
  const uint64_t ingests_before = pipeline.ingests();
  std::atomic<int> third_result{-1};
  std::thread producer([&] {
    third_result.store(
        pipeline.Ingest({EntityProfile(3, 0, {{"n", "epsilon zeta"}})}) ? 1
                                                                        : 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread stopper([&] { pipeline.Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  matcher.Release();  // un-park the worker so Stop() can join it
  stopper.join();
  producer.join();
  // The dropped increment was reported as a failure, and none of the
  // success bookkeeping ran for it.
  EXPECT_EQ(third_result.load(), 0);
  EXPECT_EQ(pipeline.ingests(), ingests_before);
}

TEST(ShardedPipelineTest, RestoreShardCountMismatchLeavesPipelineUsable) {
  const JaccardMatcher matcher(0.5);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pier_shard_mismatch_test")
          .string();
  std::filesystem::remove_all(dir);
  std::string snapshot_path;
  {
    ShardedOptions options;
    options.shard_count = 2;
    ShardedPipeline pipeline(options, &matcher, [](ProfileId, ProfileId) {});
    pipeline.EnableCheckpoints(dir, /*every=*/1, /*keep=*/1);
    EXPECT_TRUE(pipeline.Ingest({EntityProfile(0, 0, {{"n", "alpha beta"}}),
                                 EntityProfile(1, 0, {{"n", "alpha beta"}})}));
    pipeline.Drain();
    auto latest = persist::CheckpointManager::FindLatest(dir);
    ASSERT_TRUE(latest.has_value());
    snapshot_path = *latest;
  }
  ShardedOptions options;
  options.shard_count = 4;  // mismatch
  ShardedPipeline pipeline(options, &matcher, [](ProfileId, ProfileId) {});
  std::ifstream in(snapshot_path, std::ios::binary);
  std::string error;
  EXPECT_FALSE(pipeline.RestoreFromSnapshot(in, &error));
  EXPECT_NE(error.find("shard"), std::string::npos);
  // Rejected up front, before any mutation: still usable.
  EXPECT_TRUE(pipeline.Ingest({EntityProfile(0, 0, {{"n", "alpha beta"}})}));
  pipeline.Drain();
  std::filesystem::remove_all(dir);
}

TEST(ShardedPipelineTest, FailedMidRestorePoisonsPipeline) {
  const JaccardMatcher matcher(0.5);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pier_shard_poison_test")
          .string();
  std::filesystem::remove_all(dir);
  std::string snapshot_path;
  {
    ShardedOptions options;
    options.shard_count = 2;
    options.pipeline.strategy = PierStrategy::kIPes;
    ShardedPipeline pipeline(options, &matcher, [](ProfileId, ProfileId) {});
    pipeline.EnableCheckpoints(dir, /*every=*/1, /*keep=*/1);
    EXPECT_TRUE(pipeline.Ingest({EntityProfile(0, 0, {{"n", "alpha beta"}}),
                                 EntityProfile(1, 0, {{"n", "alpha beta"}})}));
    pipeline.Drain();
    auto latest = persist::CheckpointManager::FindLatest(dir);
    ASSERT_TRUE(latest.has_value());
    snapshot_path = *latest;
  }
  // Same shard count, different per-shard options: the global sections
  // restore fine, then shard 0's fingerprint check fails -- a failure
  // *after* mutation began, so the pipeline must poison itself.
  ShardedOptions options;
  options.shard_count = 2;
  options.pipeline.strategy = PierStrategy::kIPcs;
  ShardedPipeline pipeline(options, &matcher, [](ProfileId, ProfileId) {});
  std::ifstream in(snapshot_path, std::ios::binary);
  std::string error;
  EXPECT_FALSE(pipeline.RestoreFromSnapshot(in, &error));
  EXPECT_NE(error.find("poisoned"), std::string::npos) << error;
  EXPECT_FALSE(pipeline.Ingest({EntityProfile(0, 0, {{"n", "alpha beta"}})}));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume equivalence

TEST(ShardedPipelineTest, CheckpointAndResumeMatchesUninterruptedRun) {
  BibliographicOptions data_options;
  data_options.source0_count = 70;
  data_options.source1_count = 60;
  const Dataset d = GenerateBibliographic(data_options);
  const JaccardMatcher matcher(0.35);
  const size_t kIncrements = 10;
  constexpr size_t kShards = 2;

  // Uninterrupted reference run.
  std::map<ProfileId, ProfileId> expected_clusters;
  VerdictLog unused;
  RunSharded(d, kIncrements, matcher, kShards, &expected_clusters, &unused);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "pier_shard_resume_test")
          .string();
  std::filesystem::remove_all(dir);
  const auto increments = SplitIntoIncrements(d, kIncrements);
  auto increment_profiles = [&](size_t chunk) {
    return std::vector<EntityProfile>(
        d.profiles.begin() + static_cast<ptrdiff_t>(increments[chunk].begin),
        d.profiles.begin() + static_cast<ptrdiff_t>(increments[chunk].end));
  };
  auto make_options = [&] {
    ShardedOptions options;
    options.pipeline = EquivalenceOptions(d.kind);
    options.shard_count = kShards;
    return options;
  };
  {
    ShardedPipeline pipeline(make_options(), &matcher,
                             [](ProfileId, ProfileId) {});
    pipeline.EnableCheckpoints(dir, /*every=*/3, /*keep=*/2);
    for (size_t chunk = 0; chunk < 6; ++chunk) {
      ASSERT_TRUE(pipeline.Ingest(increment_profiles(chunk)));
    }
    // Killed here (destructor mid-stream): the latest checkpoint holds
    // a consistent cut after some prefix of the increments.
  }
  auto latest = persist::CheckpointManager::FindLatest(dir);
  ASSERT_TRUE(latest.has_value());

  ShardedPipeline resumed(make_options(), &matcher,
                          [](ProfileId, ProfileId) {});
  std::ifstream in(*latest, std::ios::binary);
  std::string error;
  ASSERT_TRUE(resumed.RestoreFromSnapshot(in, &error)) << error;
  const uint64_t already_ingested = resumed.ingests();
  ASSERT_GT(already_ingested, 0u);
  ASSERT_LE(already_ingested, 6u);
  for (size_t chunk = already_ingested; chunk < kIncrements; ++chunk) {
    ASSERT_TRUE(resumed.Ingest(increment_profiles(chunk)));
  }
  resumed.NotifyStreamEnd();
  resumed.Drain();

  // Recovery-equivalence: the resumed run converges to the exact final
  // clusters of the uninterrupted run.
  EXPECT_EQ(resumed.clusters().universe_size(), d.profiles.size());
  for (ProfileId id = 0; id < d.profiles.size(); ++id) {
    EXPECT_EQ(resumed.ClusterIdOf(id), expected_clusters[id]) << "id=" << id;
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Metrics

TEST(ShardedPipelineTest, ExportsShardAndFreshnessMetrics) {
  obs::MetricsRegistry registry;
  CensusOptions data_options;
  data_options.num_records = 120;
  const Dataset d = GenerateCensus(data_options);
  const JaccardMatcher matcher(0.4);

  ShardedOptions options;
  options.pipeline.kind = d.kind;
  options.pipeline.metrics = &registry;
  options.shard_count = 2;
  options.queue_capacity = 1;  // force measurable backpressure
  {
    ShardedPipeline pipeline(options, &matcher, [](ProfileId, ProfileId) {});
    for (const auto& inc : SplitIntoIncrements(d, 12)) {
      std::vector<EntityProfile> profiles(
          d.profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
          d.profiles.begin() + static_cast<ptrdiff_t>(inc.end));
      ASSERT_TRUE(pipeline.Ingest(std::move(profiles)));
    }
    pipeline.NotifyStreamEnd();
    pipeline.Drain();
    EXPECT_EQ(registry.GetCounter("realtime.ingests")->Value(), 12u);
    EXPECT_GT(registry.GetCounter("shard.microbatches")->Value(), 0u);
    EXPECT_GT(registry.GetCounter("shard.verdict_batches")->Value(), 0u);
    // Quiescent after Drain: nothing queued, every ingest closed out.
    // Ingests closed out by a verdict delivery land in the freshness
    // histogram; ingests that never produced a verdict are closed out
    // at drain time into the quiescence histogram instead of polluting
    // the freshness percentiles -- together they account for every
    // ingest exactly once.
    EXPECT_EQ(registry.GetGauge("realtime.queue_depth")->Value(), 0.0);
    EXPECT_EQ(registry.GetGauge("realtime.pending_ingests")->Value(), 0.0);
    EXPECT_EQ(
        registry.GetHistogram("realtime.ingest_to_first_verdict_ns")->Count() +
            registry.GetHistogram("realtime.ingest_to_quiescence_ns")->Count(),
        12u);
    EXPECT_GT(
        registry.GetHistogram("realtime.ingest_to_first_verdict_ns")->Count(),
        0u);
    EXPECT_EQ(registry.GetGauge("realtime.worker_idle")->Value(), 1.0);
    // Per-shard gauges exist for both shards.
    EXPECT_EQ(registry.GetGauge("shard.0.busy")->Value(), 0.0);
    EXPECT_EQ(registry.GetGauge("shard.1.busy")->Value(), 0.0);
  }
}

// Regression: drain used to close verdict-less ingests into the
// freshness histogram, so a stream of singleton profiles (no shared
// blocks, no comparisons, no verdicts) reported its entire
// time-to-shutdown as "ingest-to-first-verdict latency". Those samples
// now land in a separate quiescence histogram.
TEST(ShardedPipelineTest, DrainClosesOutVerdictlessIngestsSeparately) {
  obs::MetricsRegistry registry;
  const JaccardMatcher matcher(0.5);
  ShardedOptions options;
  options.pipeline.metrics = &registry;
  options.shard_count = 2;
  ShardedPipeline pipeline(options, &matcher, [](ProfileId, ProfileId) {});
  // Every profile's tokens are unique to it: every block is a
  // singleton, so no comparison is ever scheduled and no verdict is
  // ever delivered.
  for (ProfileId id = 0; id < 5; ++id) {
    const std::string text =
        "solo" + std::to_string(id) + " only" + std::to_string(id);
    ASSERT_TRUE(pipeline.Ingest({EntityProfile(id, 0, {{"n", text}})}));
  }
  pipeline.Drain();
  EXPECT_EQ(
      registry.GetHistogram("realtime.ingest_to_first_verdict_ns")->Count(),
      0u);
  EXPECT_EQ(
      registry.GetHistogram("realtime.ingest_to_quiescence_ns")->Count(), 5u);
  EXPECT_EQ(registry.GetGauge("realtime.pending_ingests")->Value(), 0.0);
}

}  // namespace
}  // namespace pier
