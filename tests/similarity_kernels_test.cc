// Tests for src/similarity/similarity_kernels: the Myers bit-parallel
// Levenshtein kernels must agree with the naive DP on every input
// (randomized over lengths 0-300, alphabets from binary to full-byte
// including high bytes), the threshold->integer-bound conversions must
// satisfy their defining property against the reference floating-point
// expressions, and the set-similarity verdicts must answer exactly
// "reference similarity >= threshold". Suites are prefixed
// SimilarityKernels so the CI sanitizer gates pick them up by name.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "similarity/intersect_kernel.h"
#include "similarity/matcher.h"
#include "similarity/similarity_kernels.h"
#include "similarity/string_distance.h"
#include "util/rng.h"

namespace pier {
namespace {

std::vector<TokenId> Tokens(std::initializer_list<TokenId> ids) {
  return std::vector<TokenId>(ids);
}

std::string RandomString(Rng& rng, size_t len, uint32_t alphabet) {
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Offset into the printable range for small alphabets; alphabet
    // 256 exercises every byte value including 0x00 and high bytes.
    const uint32_t c = static_cast<uint32_t>(rng.UniformInt(0, alphabet - 1));
    s.push_back(static_cast<char>(alphabet == 256 ? c : 'a' + c));
  }
  return s;
}

std::vector<TokenId> RandomTokenSet(Rng& rng, size_t size, uint64_t universe) {
  std::vector<TokenId> tokens;
  tokens.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    tokens.push_back(static_cast<TokenId>(rng.UniformInt(0, universe)));
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

// ---------------------------------------------------------------------------
// Myers bit-parallel edit distance
// ---------------------------------------------------------------------------

TEST(SimilarityKernelsMyersTest, KnownValues) {
  SimilarityScratch scratch;
  EXPECT_EQ(MyersEditDistance("kitten", "sitting", &scratch), 3u);
  EXPECT_EQ(MyersEditDistance("flaw", "lawn", &scratch), 2u);
  EXPECT_EQ(MyersEditDistance("", "abc", &scratch), 3u);
  EXPECT_EQ(MyersEditDistance("abc", "", &scratch), 3u);
  EXPECT_EQ(MyersEditDistance("", "", &scratch), 0u);
  EXPECT_EQ(MyersEditDistance("same", "same", &scratch), 0u);
  EXPECT_EQ(MyersEditDistance("a", "b", &scratch), 1u);
  // Affix trimming must not merge across the differing core.
  EXPECT_EQ(MyersEditDistance("prefixXmiddleYsuffix", "prefixZmiddleWsuffix",
                              &scratch),
            2u);
}

TEST(SimilarityKernelsMyersTest, HighBytesAndEmbeddedNul) {
  SimilarityScratch scratch;
  const std::string a{"\x00\xff\x80za", 5};
  const std::string b{"\x00\xfe\x80zb", 5};
  EXPECT_EQ(MyersEditDistance(a, b, &scratch), Levenshtein(a, b));
  EXPECT_EQ(Levenshtein(a, b), 2u);
}

TEST(SimilarityKernelsMyersTest, BlockBoundaryLengths) {
  // Word-width boundaries are where the blocked variant's carry logic
  // lives; pin each of them against the DP.
  SimilarityScratch scratch;
  Rng rng(99);
  for (const size_t len : {1u, 63u, 64u, 65u, 127u, 128u, 129u, 300u}) {
    const std::string a = RandomString(rng, len, 4);
    std::string b = a;
    // A few random edits so trimming cannot reduce to the empty core.
    for (int e = 0; e < 5 && !b.empty(); ++e) {
      b[rng.UniformInt(0, b.size() - 1)] =
          static_cast<char>('a' + rng.UniformInt(0, 3));
    }
    EXPECT_EQ(MyersEditDistance(a, b, &scratch), Levenshtein(a, b))
        << "len=" << len;
  }
}

TEST(SimilarityKernelsMyersTest, ScratchReuseAcrossGrowthAndShrink) {
  // One scratch across shrinking and growing patterns: the epoch
  // stamps must never let a stale Peq row leak into a later call.
  SimilarityScratch scratch;
  Rng rng(7);
  std::vector<std::pair<std::string, std::string>> cases;
  for (const size_t len : {200u, 3u, 130u, 0u, 64u, 299u, 1u, 65u}) {
    cases.emplace_back(RandomString(rng, len, 26),
                       RandomString(rng, len / 2 + 1, 26));
  }
  for (const auto& [a, b] : cases) {
    EXPECT_EQ(MyersEditDistance(a, b, &scratch), Levenshtein(a, b))
        << "a.size=" << a.size() << " b.size=" << b.size();
  }
}

TEST(SimilarityKernelsBoundedTest, KnownValues) {
  SimilarityScratch scratch;
  EXPECT_EQ(MyersEditDistanceBounded("kitten", "sitting", 3, &scratch), 3u);
  EXPECT_EQ(MyersEditDistanceBounded("kitten", "sitting", 10, &scratch), 3u);
  EXPECT_EQ(MyersEditDistanceBounded("kitten", "sitting", 2, &scratch), 3u);
  EXPECT_EQ(MyersEditDistanceBounded("aaaa", "bbbb", 1, &scratch), 2u);
  EXPECT_EQ(MyersEditDistanceBounded("ab", "abcdefgh", 3, &scratch), 4u);
  EXPECT_EQ(MyersEditDistanceBounded("", "", 0, &scratch), 0u);
  EXPECT_EQ(MyersEditDistanceBounded("abc", "", 5, &scratch), 3u);
}

// Property: both the bit-parallel bounded kernel and the reference
// banded DP compute exactly min(Levenshtein(a, b), max_dist + 1), and
// the exact kernel equals the DP, over fuzzed strings of lengths 0-300
// and alphabet sizes 2..256 (high bytes included). The scratch is
// reused across every iteration to stress the epoch stamping.
class SimilarityKernelsMyersPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimilarityKernelsMyersPropertyTest, KernelsMatchReferenceDp) {
  Rng rng(GetParam());
  SimilarityScratch scratch;
  const uint32_t alphabets[] = {2, 4, 26, 256};
  for (int iter = 0; iter < 200; ++iter) {
    const uint32_t alphabet = alphabets[iter % 4];
    const std::string a = RandomString(rng, rng.UniformInt(0, 300), alphabet);
    const std::string b = RandomString(rng, rng.UniformInt(0, 300), alphabet);
    const size_t exact = Levenshtein(a, b);
    ASSERT_EQ(MyersEditDistance(a, b, &scratch), exact)
        << "|a|=" << a.size() << " |b|=" << b.size()
        << " alphabet=" << alphabet;

    const size_t bound = rng.UniformInt(0, 40);
    const size_t expected = std::min(exact, bound + 1);
    ASSERT_EQ(MyersEditDistanceBounded(a, b, bound, &scratch), expected)
        << "|a|=" << a.size() << " |b|=" << b.size() << " k=" << bound;
    // Satellite: the reference banded DP obeys the same contract.
    ASSERT_EQ(LevenshteinBounded(a, b, bound), expected)
        << "|a|=" << a.size() << " |b|=" << b.size() << " k=" << bound;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityKernelsMyersPropertyTest,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

// ---------------------------------------------------------------------------
// Threshold -> integer-bound conversions
// ---------------------------------------------------------------------------

// The conversions exist so kernels can compare integers instead of
// doubles; each test checks the *defining property*: the integer bound
// classifies every feasible count exactly as the reference
// floating-point expression does, including degenerate thresholds.
const double kThresholds[] = {0.3,  0.5, 0.8,       0.0, 1.0,
                              -0.5, 1.5, 1.0 / 3.0, 0.9999999999999999};

TEST(SimilarityKernelsThresholdTest, EditDistanceBoundDefiningProperty) {
  for (size_t max_len = 1; max_len <= 48; ++max_len) {
    for (const double t : kThresholds) {
      const ptrdiff_t k = MaxEditDistanceForThreshold(t, max_len);
      ASSERT_GE(k, -1);
      ASSERT_LE(k, static_cast<ptrdiff_t>(max_len));
      for (size_t d = 0; d <= max_len; ++d) {
        const double sim =
            1.0 - static_cast<double>(d) / static_cast<double>(max_len);
        ASSERT_EQ(static_cast<ptrdiff_t>(d) <= k, sim >= t)
            << "t=" << t << " max_len=" << max_len << " d=" << d;
      }
    }
  }
}

TEST(SimilarityKernelsThresholdTest, EditDistanceBoundRandomThresholds) {
  Rng rng(21);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t max_len = rng.UniformInt(1, 300);
    const double t = rng.UniformDouble() * 1.2 - 0.1;
    const ptrdiff_t k = MaxEditDistanceForThreshold(t, max_len);
    // Spot-check the boundary: k passes, k+1 fails.
    const auto sim = [max_len](ptrdiff_t d) {
      return 1.0 - static_cast<double>(d) / static_cast<double>(max_len);
    };
    if (k >= 0) {
      ASSERT_GE(sim(k), t) << "t=" << t << " max_len=" << max_len;
    }
    if (k < static_cast<ptrdiff_t>(max_len)) {
      ASSERT_LT(sim(k + 1), t) << "t=" << t << " max_len=" << max_len;
    }
  }
}

TEST(SimilarityKernelsThresholdTest, JaccardOverlapDefiningProperty) {
  for (size_t sa = 0; sa <= 24; ++sa) {
    for (size_t sb = 0; sb <= 24; ++sb) {
      if (sa + sb == 0) continue;
      for (const double t : kThresholds) {
        const size_t required = MinOverlapForJaccard(t, sa, sb);
        const size_t cap = std::min(sa, sb);
        ASSERT_LE(required, cap + 1);
        for (size_t c = 0; c <= cap; ++c) {
          const double sim = static_cast<double>(c) /
                             static_cast<double>(sa + sb - c);
          ASSERT_EQ(c >= required, sim >= t)
              << "t=" << t << " sa=" << sa << " sb=" << sb << " c=" << c;
        }
      }
    }
  }
}

TEST(SimilarityKernelsThresholdTest, CosineOverlapDefiningProperty) {
  for (size_t sa = 1; sa <= 24; ++sa) {
    for (size_t sb = 1; sb <= 24; ++sb) {
      for (const double t : kThresholds) {
        const size_t required = MinOverlapForCosine(t, sa, sb);
        const size_t cap = std::min(sa, sb);
        ASSERT_LE(required, cap + 1);
        const double denom = std::sqrt(static_cast<double>(sa) *
                                       static_cast<double>(sb));
        for (size_t c = 0; c <= cap; ++c) {
          const double sim = static_cast<double>(c) / denom;
          ASSERT_EQ(c >= required, sim >= t)
              << "t=" << t << " sa=" << sa << " sb=" << sb << " c=" << c;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Bounded intersection
// ---------------------------------------------------------------------------

TEST(SimilarityKernelsIntersectionTest, Basics) {
  EXPECT_TRUE(IntersectionAtLeast(Tokens({1, 2, 3}), Tokens({2, 3, 4}), 0));
  EXPECT_TRUE(IntersectionAtLeast(Tokens({1, 2, 3}), Tokens({2, 3, 4}), 2));
  EXPECT_FALSE(IntersectionAtLeast(Tokens({1, 2, 3}), Tokens({2, 3, 4}), 3));
  EXPECT_TRUE(IntersectionAtLeast(Tokens({}), Tokens({}), 0));
  EXPECT_FALSE(IntersectionAtLeast(Tokens({}), Tokens({1}), 1));
  // The size filter rejects before touching any element.
  EXPECT_FALSE(IntersectionAtLeast(Tokens({1, 2}), Tokens({1, 2, 3}), 3));
}

TEST(SimilarityKernelsIntersectionTest, AgreesWithExactCount) {
  Rng rng(31);
  for (int iter = 0; iter < 500; ++iter) {
    // Alternate balanced and heavily skewed sizes so both the merge
    // path and the galloping path run.
    const bool skewed = iter % 2 == 1;
    const size_t la = skewed ? rng.UniformInt(0, 4) : rng.UniformInt(0, 60);
    const size_t lb = skewed ? rng.UniformInt(120, 400)
                             : rng.UniformInt(0, 60);
    const auto a = RandomTokenSet(rng, la, 500);
    const auto b = RandomTokenSet(rng, lb, 500);
    const size_t exact = IntersectionSize(a, b);
    for (const size_t required :
         {size_t{0}, exact > 0 ? exact - 1 : 0, exact, exact + 1,
          std::min(a.size(), b.size()) + 1}) {
      ASSERT_EQ(IntersectionAtLeast(a, b, required), exact >= required)
          << "|a|=" << a.size() << " |b|=" << b.size()
          << " required=" << required << " exact=" << exact;
      ASSERT_EQ(IntersectionAtLeast(b, a, required), exact >= required)
          << "(swapped) required=" << required;
    }
  }
}

// ---------------------------------------------------------------------------
// Verdict kernels vs the reference scores
// ---------------------------------------------------------------------------

class SimilarityKernelsVerdictPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimilarityKernelsVerdictPropertyTest, SetVerdictsMatchReference) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 400; ++iter) {
    const bool skewed = iter % 3 == 2;
    const size_t la = skewed ? rng.UniformInt(0, 3) : rng.UniformInt(0, 40);
    const size_t lb = skewed ? rng.UniformInt(100, 300)
                             : rng.UniformInt(0, 40);
    // A small universe forces frequent overlap near the threshold.
    const auto a = RandomTokenSet(rng, la, 80);
    const auto b = RandomTokenSet(rng, lb, 80);
    const double thresholds[] = {0.3, 0.5, 0.8, rng.UniformDouble()};
    for (const double t : thresholds) {
      ASSERT_EQ(JaccardVerdict(a, b, t), JaccardSimilarity(a, b) >= t)
          << "|a|=" << a.size() << " |b|=" << b.size() << " t=" << t;
      ASSERT_EQ(CosineVerdict(a, b, t), CosineSimilarity(a, b) >= t)
          << "|a|=" << a.size() << " |b|=" << b.size() << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityKernelsVerdictPropertyTest,
                         ::testing::Values(41u, 42u, 43u));

TEST(SimilarityKernelsVerdictTest, EmptySetEdgeCases) {
  // Reference semantics: Jaccard({}, {}) = 1, Cosine({}, {}) = 1, and
  // any one-empty pair scores 0.
  for (const double t : {0.0, 0.5, 1.0, 1.5}) {
    ASSERT_EQ(JaccardVerdict({}, {}, t), 1.0 >= t) << "t=" << t;
    ASSERT_EQ(CosineVerdict({}, {}, t), 1.0 >= t) << "t=" << t;
    ASSERT_EQ(JaccardVerdict({}, Tokens({1, 2}), t), 0.0 >= t) << "t=" << t;
    ASSERT_EQ(CosineVerdict(Tokens({7}), {}, t), 0.0 >= t) << "t=" << t;
  }
}

// ---------------------------------------------------------------------------
// Matcher-level equivalence: Verdict == Matches, Kernel == Similarity
// ---------------------------------------------------------------------------

EntityProfile MakeProfile(ProfileId id, std::vector<TokenId> tokens,
                          std::string flat) {
  EntityProfile p(id, 0, {});
  p.set_tokens(std::move(tokens));
  p.set_flat_text(std::move(flat));
  return p;
}

std::vector<EntityProfile> RandomProfiles(Rng& rng, size_t count) {
  std::vector<EntityProfile> profiles;
  profiles.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Text pairs drawn from a small pool of bases plus random edits
    // keep many pairs near the decision boundary; lengths straddle the
    // 64-char single-word limit and the 256-char matcher cap.
    std::string text = RandomString(rng, rng.UniformInt(0, 320), 6);
    profiles.push_back(MakeProfile(static_cast<ProfileId>(i),
                                   RandomTokenSet(rng, rng.UniformInt(0, 30),
                                                  60),
                                   std::move(text)));
  }
  return profiles;
}

TEST(SimilarityKernelsMatcherTest, VerdictAndKernelMatchReference) {
  Rng rng(51);
  const std::vector<EntityProfile> profiles = RandomProfiles(rng, 120);

  std::vector<std::unique_ptr<Matcher>> matchers;
  for (const double t : {0.3, 0.5, 0.8}) {
    matchers.push_back(std::make_unique<JaccardMatcher>(t));
    matchers.push_back(std::make_unique<CosineMatcher>(t));
    matchers.push_back(
        std::make_unique<EditDistanceMatcher>(t, /*max_text_length=*/256));
  }

  SimilarityScratch scratch;
  for (const auto& matcher : matchers) {
    for (int iter = 0; iter < 1500; ++iter) {
      const EntityProfile& a =
          profiles[rng.UniformInt(0, profiles.size() - 1)];
      const EntityProfile& b =
          profiles[rng.UniformInt(0, profiles.size() - 1)];
      // Exact double equality: the kernel path must reproduce the
      // reference score bit-for-bit, and the verdict its decision.
      ASSERT_EQ(matcher->SimilarityKernel(a, b, &scratch),
                matcher->Similarity(a, b))
          << matcher->name() << " t=" << matcher->threshold() << " a=" << a.id
          << " b=" << b.id;
      ASSERT_EQ(matcher->Verdict(a, b, &scratch), matcher->Matches(a, b))
          << matcher->name() << " t=" << matcher->threshold() << " a=" << a.id
          << " b=" << b.id;
    }
  }
}

// ---------------------------------------------------------------------------
// Batched intersection kernel
// ---------------------------------------------------------------------------

size_t NaiveIntersectionSize(const std::vector<TokenId>& a,
                             const std::vector<TokenId>& b) {
  size_t common = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

TEST(IntersectKernelTest, SizeMatchesNaiveAcrossShapes) {
  // Sizes straddle the 8-wide block boundary on both sides, and the
  // universe widths sweep from near-total overlap to near-disjoint so
  // every advance pattern of the block loop gets exercised.
  Rng rng(4242);
  const size_t sizes[] = {0, 1, 2, 7, 8, 9, 15, 16, 17, 33, 100, 1000};
  for (const size_t sa : sizes) {
    for (const size_t sb : sizes) {
      for (const uint64_t universe : {40u, 300u, 100000u}) {
        const std::vector<TokenId> a = RandomTokenSet(rng, sa, universe);
        const std::vector<TokenId> b = RandomTokenSet(rng, sb, universe);
        ASSERT_EQ(SortedIntersectionSize(a, b), NaiveIntersectionSize(a, b))
            << "sa=" << sa << " sb=" << sb << " universe=" << universe;
      }
    }
  }
}

TEST(IntersectKernelTest, SizeEdgeCases) {
  const std::vector<TokenId> empty;
  const std::vector<TokenId> run = Tokens({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_EQ(SortedIntersectionSize(empty, empty), 0u);
  EXPECT_EQ(SortedIntersectionSize(empty, run), 0u);
  EXPECT_EQ(SortedIntersectionSize(run, run), run.size());
  // Fully disjoint blocks of exactly the vector width.
  const std::vector<TokenId> lo = Tokens({0, 1, 2, 3, 4, 5, 6, 7});
  const std::vector<TokenId> hi = Tokens({8, 9, 10, 11, 12, 13, 14, 15});
  EXPECT_EQ(SortedIntersectionSize(lo, hi), 0u);
  EXPECT_EQ(SortedIntersectionSize(lo, lo), 8u);
}

TEST(IntersectKernelTest, AtLeastMatchesSizeForEveryThreshold) {
  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t sa = static_cast<size_t>(rng.UniformInt(0, 60));
    const size_t sb = static_cast<size_t>(rng.UniformInt(0, 60));
    const uint64_t universe = trial % 2 == 0 ? 80 : 5000;
    const std::vector<TokenId> a = RandomTokenSet(rng, sa, universe);
    const std::vector<TokenId> b = RandomTokenSet(rng, sb, universe);
    const size_t common = NaiveIntersectionSize(a, b);
    const size_t max_required = std::min(a.size(), b.size()) + 2;
    for (size_t required = 0; required <= max_required; ++required) {
      ASSERT_EQ(SortedIntersectionAtLeast(a, b, required), common >= required)
          << "trial=" << trial << " required=" << required
          << " common=" << common;
    }
  }
}

TEST(SimilarityKernelsMatcherTest, EditDistanceVerdictNearIdenticalTexts) {
  // Deterministic boundary cases for the threshold->distance
  // conversion: pairs a fixed number of edits apart on either side of
  // the cutoff, including texts longer than the 256-char cap.
  SimilarityScratch scratch;
  Rng rng(61);
  for (const double t : {0.3, 0.5, 0.8, 0.95}) {
    const EditDistanceMatcher matcher(t, /*max_text_length=*/256);
    for (const size_t len : {8u, 40u, 64u, 200u, 256u, 300u}) {
      const std::string base = RandomString(rng, len, 8);
      for (size_t edits = 0; edits <= std::min<size_t>(len, 24); ++edits) {
        std::string mutated = base;
        for (size_t e = 0; e < edits; ++e) {
          mutated[e] = static_cast<char>('z' - (e % 4));
        }
        const auto a = MakeProfile(0, {}, base);
        const auto b = MakeProfile(1, {}, mutated);
        ASSERT_EQ(matcher.Verdict(a, b, &scratch), matcher.Matches(a, b))
            << "t=" << t << " len=" << len << " edits=" << edits;
      }
    }
  }
}

}  // namespace
}  // namespace pier
