// Tests for src/similarity: token-set measures, Levenshtein (exact and
// banded), matchers, and randomized property tests for the banded
// implementation against the exact one.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "similarity/matcher.h"
#include "similarity/string_distance.h"
#include "util/rng.h"

namespace pier {
namespace {

std::vector<TokenId> Tokens(std::initializer_list<TokenId> ids) {
  return std::vector<TokenId>(ids);
}

TEST(IntersectionTest, BasicOverlap) {
  EXPECT_EQ(IntersectionSize(Tokens({1, 2, 3}), Tokens({2, 3, 4})), 2u);
  EXPECT_EQ(IntersectionSize(Tokens({1, 2}), Tokens({3, 4})), 0u);
  EXPECT_EQ(IntersectionSize(Tokens({}), Tokens({1})), 0u);
}

TEST(JaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Tokens({1, 2, 3}), Tokens({2, 3, 4})),
                   0.5);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Tokens({1, 2}), Tokens({1, 2})), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Tokens({1}), Tokens({2})), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Tokens({}), Tokens({})), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(Tokens({}), Tokens({1})), 0.0);
}

TEST(OverlapCoefficientTest, KnownValues) {
  EXPECT_DOUBLE_EQ(OverlapCoefficient(Tokens({1, 2}), Tokens({1, 2, 3, 4})),
                   1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient(Tokens({1, 5}), Tokens({1, 2, 3, 4})),
                   0.5);
}

// Regression: an empty side used to score 1.0 (0/0 guarded with the
// wrong fallback); a set shares nothing with the empty set, so only
// the both-empty case is a perfect overlap.
TEST(OverlapCoefficientTest, EmptySides) {
  EXPECT_DOUBLE_EQ(OverlapCoefficient(Tokens({}), Tokens({1, 2})), 0.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient(Tokens({1}), Tokens({})), 0.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient(Tokens({}), Tokens({})), 1.0);
}

TEST(CosineTest, KnownValues) {
  EXPECT_NEAR(CosineSimilarity(Tokens({1, 2}), Tokens({1, 2, 3, 4})),
              2.0 / std::sqrt(8.0), 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity(Tokens({1}), Tokens({2})), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(Tokens({}), Tokens({1})), 0.0);
}

TEST(LevenshteinTest, KnownValues) {
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(Levenshtein("flaw", "lawn"), 2u);
  EXPECT_EQ(Levenshtein("", "abc"), 3u);
  EXPECT_EQ(Levenshtein("abc", ""), 3u);
  EXPECT_EQ(Levenshtein("same", "same"), 0u);
  EXPECT_EQ(Levenshtein("a", "b"), 1u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(Levenshtein("abcdef", "azced"), Levenshtein("azced", "abcdef"));
}

TEST(LevenshteinBoundedTest, ExactWithinBound) {
  EXPECT_EQ(LevenshteinBounded("kitten", "sitting", 3), 3u);
  EXPECT_EQ(LevenshteinBounded("kitten", "sitting", 10), 3u);
}

TEST(LevenshteinBoundedTest, ExceedsBound) {
  EXPECT_GT(LevenshteinBounded("kitten", "sitting", 2), 2u);
  EXPECT_GT(LevenshteinBounded("aaaa", "bbbb", 3), 3u);
}

TEST(LevenshteinBoundedTest, LengthDifferenceShortCircuit) {
  EXPECT_GT(LevenshteinBounded("ab", "abcdefgh", 3), 3u);
}

TEST(LevenshteinBoundedTest, EmptyStrings) {
  EXPECT_EQ(LevenshteinBounded("", "", 0), 0u);
  EXPECT_EQ(LevenshteinBounded("abc", "", 5), 3u);
}

// Property test: the banded version agrees with the exact version on
// random strings whenever the distance is within the bound.
class LevenshteinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LevenshteinPropertyTest, BandedMatchesExact) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 300; ++iter) {
    const size_t la = rng.UniformInt(0, 24);
    const size_t lb = rng.UniformInt(0, 24);
    std::string a;
    std::string b;
    for (size_t i = 0; i < la; ++i) {
      a.push_back(static_cast<char>('a' + rng.UniformInt(0, 3)));
    }
    for (size_t i = 0; i < lb; ++i) {
      b.push_back(static_cast<char>('a' + rng.UniformInt(0, 3)));
    }
    const size_t exact = Levenshtein(a, b);
    const size_t bound = rng.UniformInt(0, 12);
    const size_t banded = LevenshteinBounded(a, b, bound);
    if (exact <= bound) {
      EXPECT_EQ(banded, exact) << "a=" << a << " b=" << b << " k=" << bound;
    } else {
      EXPECT_GT(banded, bound) << "a=" << a << " b=" << b << " k=" << bound;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevenshteinPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(NormalizedEditTest, Bounds) {
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(NormalizedEditSimilarity("abcd", "abcx"), 0.75, 1e-12);
}

TEST(NormalizedEditTest, IdenticalStringsShortCircuit) {
  // Identical inputs (any length) must return exactly 1.0 without
  // running the DP; the long-string case would be quadratic otherwise.
  const std::string long_text(10000, 'q');
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity(long_text, long_text), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("x", "x"), 1.0);
  // One empty side: the length-difference lower bound is tight
  // (dist == max_len), decided without the DP.
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("", "abcdefgh"), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("xyz", ""), 0.0);
}

// ---------------------------------------------------------------------------
// Matchers
// ---------------------------------------------------------------------------

EntityProfile MakeProfile(ProfileId id, std::vector<TokenId> tokens,
                          std::string flat) {
  EntityProfile p(id, 0, {});
  p.set_tokens(std::move(tokens));
  p.set_flat_text(std::move(flat));
  return p;
}

TEST(MatcherTest, JaccardMatcherThreshold) {
  const JaccardMatcher matcher(0.5);
  const auto a = MakeProfile(0, {1, 2, 3}, "x");
  const auto b = MakeProfile(1, {2, 3, 4}, "y");
  EXPECT_DOUBLE_EQ(matcher.Similarity(a, b), 0.5);
  EXPECT_TRUE(matcher.Matches(a, b));  // >= threshold
  const JaccardMatcher strict(0.6);
  EXPECT_FALSE(strict.Matches(a, b));
}

TEST(MatcherTest, EditDistanceMatcher) {
  const EditDistanceMatcher matcher(0.7);
  const auto a = MakeProfile(0, {}, "jonathan smith");
  const auto b = MakeProfile(1, {}, "jonathon smith");
  EXPECT_GT(matcher.Similarity(a, b), 0.9);
  EXPECT_TRUE(matcher.Matches(a, b));
}

TEST(MatcherTest, EditDistanceCapsTextLength) {
  const EditDistanceMatcher matcher(0.5, /*max_text_length=*/4);
  const auto a = MakeProfile(0, {}, "abcdXXXXXXXX");
  const auto b = MakeProfile(1, {}, "abcdYYYYYYYY");
  EXPECT_DOUBLE_EQ(matcher.Similarity(a, b), 1.0);  // compares "abcd" only
  EXPECT_EQ(matcher.CostUnits(a, b), 4u * 4u + 1u);
}

TEST(MatcherTest, CostUnitsScaleWithInput) {
  const JaccardMatcher js;
  const EditDistanceMatcher ed;
  const auto small = MakeProfile(0, {1}, "ab");
  const auto large = MakeProfile(1, {1, 2, 3, 4, 5, 6, 7, 8},
                                 "a much longer text value here");
  EXPECT_LT(js.CostUnits(small, small), js.CostUnits(large, large));
  EXPECT_LT(ed.CostUnits(small, small), ed.CostUnits(large, large));
  // ED on long text is far more expensive than JS -- the property the
  // adaptive K reacts to.
  EXPECT_GT(ed.CostUnits(large, large), 10 * js.CostUnits(large, large));
}

TEST(MatcherTest, FactoryByName) {
  EXPECT_NE(MakeMatcher("JS", 0.5), nullptr);
  EXPECT_NE(MakeMatcher("ED", 0.8), nullptr);
  EXPECT_NE(MakeMatcher("COS", 0.6), nullptr);
  EXPECT_EQ(MakeMatcher("nope", 0.5), nullptr);
  EXPECT_STREQ(MakeMatcher("JS", 0.5)->name(), "JS");
  EXPECT_DOUBLE_EQ(MakeMatcher("ED", 0.8)->threshold(), 0.8);
}

TEST(MatcherTest, KnownMatcherNamesListsEveryFactoryName) {
  // The diagnostic list must cover exactly what MakeMatcher accepts.
  const std::string names = KnownMatcherNames();
  for (const char* name : {"JS", "ED", "COS"}) {
    EXPECT_NE(names.find(name), std::string::npos) << name;
    EXPECT_NE(MakeMatcher(name, 0.5), nullptr) << name;
  }
}

TEST(MatcherTest, CosineMatcher) {
  const CosineMatcher matcher(0.5);
  const auto a = MakeProfile(0, {1, 2}, "");
  const auto b = MakeProfile(1, {1, 2}, "");
  EXPECT_DOUBLE_EQ(matcher.Similarity(a, b), 1.0);
}

}  // namespace
}  // namespace pier
