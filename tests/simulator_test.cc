// Tests for the stream simulator: virtual-time semantics, arrival
// scheduling, backpressure, budget enforcement, determinism of modeled
// costs, and the progressive-curve recording; plus the eval-layer
// curve math.

#include <gtest/gtest.h>

#include "baseline/i_base.h"
#include "datagen/generators.h"
#include "eval/progressive_curve.h"
#include "eval/report.h"
#include "similarity/matcher.h"
#include "stream/pier_adapter.h"
#include "stream/stream_simulator.h"

namespace pier {
namespace {

Dataset TinyDataset() {
  BibliographicOptions options;
  options.source0_count = 120;
  options.source1_count = 100;
  options.seed = 11;
  return GenerateBibliographic(options);
}

SimulatorOptions ModeledOptions(size_t increments, double rate) {
  SimulatorOptions options;
  options.num_increments = increments;
  options.increments_per_second = rate;
  options.cost_mode = CostMeter::Mode::kModeled;
  return options;
}

PierOptions PierFor(const Dataset& d, PierStrategy strategy) {
  PierOptions options;
  options.kind = d.kind;
  options.strategy = strategy;
  return options;
}

TEST(ProgressiveCurveTest, MatchesAtTimeSteps) {
  ProgressiveCurve curve;
  curve.Add({1.0, 10, 2});
  curve.Add({2.0, 20, 5});
  curve.Add({4.0, 40, 9});
  EXPECT_EQ(curve.MatchesAtTime(0.5), 0u);
  EXPECT_EQ(curve.MatchesAtTime(1.0), 2u);
  EXPECT_EQ(curve.MatchesAtTime(3.0), 5u);
  EXPECT_EQ(curve.MatchesAtTime(100.0), 9u);
}

TEST(ProgressiveCurveTest, MatchesAtComparisons) {
  ProgressiveCurve curve;
  curve.Add({1.0, 10, 2});
  curve.Add({2.0, 20, 5});
  EXPECT_EQ(curve.MatchesAtComparisons(9), 0u);
  EXPECT_EQ(curve.MatchesAtComparisons(10), 2u);
  EXPECT_EQ(curve.MatchesAtComparisons(25), 5u);
}

TEST(ProgressiveCurveTest, PcAtTime) {
  ProgressiveCurve curve;
  curve.Add({1.0, 10, 5});
  EXPECT_DOUBLE_EQ(curve.PcAtTime(2.0, 10), 0.5);
  EXPECT_DOUBLE_EQ(curve.PcAtTime(2.0, 0), 0.0);
}

TEST(ProgressiveCurveTest, AucPerfectVsLate) {
  // All matches at t=0 -> AUC ~ 1; all at the horizon -> AUC ~ 0.
  ProgressiveCurve early;
  early.Add({0.0, 1, 10});
  EXPECT_NEAR(early.AucOverTime(10.0, 10), 1.0, 1e-9);
  ProgressiveCurve late;
  late.Add({10.0, 1, 10});
  EXPECT_NEAR(late.AucOverTime(10.0, 10), 0.0, 1e-9);
}

TEST(ProgressiveCurveTest, AucMidpoint) {
  ProgressiveCurve curve;
  curve.Add({5.0, 1, 10});  // everything found halfway
  EXPECT_NEAR(curve.AucOverTime(10.0, 10), 0.5, 1e-9);
}

TEST(ProgressiveCurveTest, DownsampleKeepsEndpoints) {
  ProgressiveCurve curve;
  for (int i = 0; i < 100; ++i) {
    curve.Add({static_cast<double>(i), static_cast<uint64_t>(i),
               static_cast<uint64_t>(i / 2)});
  }
  const auto small = curve.Downsample(10);
  EXPECT_LE(small.points().size(), 11u);
  EXPECT_EQ(small.points().front().comparisons, 0u);
  EXPECT_EQ(small.points().back().comparisons, 99u);
}

TEST(ProgressiveCurveTest, DownsampleKeepsTimeOnlyTailPoint) {
  // Regression: the tail guard used to compare only `.comparisons`, so
  // a final point that differs from the last sampled one only in time
  // (a run ending after its last batch without further comparisons)
  // was silently dropped, truncating the curve's time extent.
  ProgressiveCurve curve;
  for (int i = 0; i < 99; ++i) {
    curve.Add({static_cast<double>(i), static_cast<uint64_t>(i),
               static_cast<uint64_t>(i / 2)});
  }
  curve.Add({1000.0, 98, 49});  // same counts as point 98, later time
  // Downsample(8): stride 99/7 lands the last sample on index 98, so
  // preserving the true final point is entirely up to the tail guard.
  const auto small = curve.Downsample(8);
  EXPECT_DOUBLE_EQ(small.points().back().time, 1000.0);
  EXPECT_EQ(small.points().back().comparisons, 98u);
  EXPECT_EQ(small.points().back().matches_found, 49u);
}

TEST(CostMeterTest, ModeledDeterministicAndAdditive) {
  const CostMeter meter(CostMeter::Mode::kModeled);
  WorkStats stats;
  stats.profiles = 10;
  stats.tokens = 100;
  const double a = meter.StepCost(stats, 123.0);  // measured arg ignored
  const double b = meter.StepCost(stats, 0.001);
  EXPECT_DOUBLE_EQ(a, b);
  WorkStats more = stats;
  more.comparisons_generated = 50;
  EXPECT_GT(meter.StepCost(more, 0.0), a);
}

TEST(CostMeterTest, MeasuredUsesWallTime) {
  const CostMeter meter(CostMeter::Mode::kMeasured);
  EXPECT_NEAR(meter.MatchCost(1000000, 0.5), 0.5,
              0.01);  // overhead is microscopic
}

TEST(SimulatorTest, RunsToEventualCompletionOnStaticStream) {
  const Dataset d = TinyDataset();
  StreamSimulator sim(&d, ModeledOptions(10, /*rate=*/0.0));
  PierAdapter alg(PierFor(d, PierStrategy::kIPes));
  const JaccardMatcher matcher(0.4);
  const RunResult result = sim.Run(alg, matcher);
  EXPECT_EQ(result.algorithm, "I-PES");
  EXPECT_GT(result.comparisons_executed, 0u);
  EXPECT_GT(result.matches_found, result.total_true_matches / 2);
  EXPECT_GE(result.stream_consumed_at, 0.0);
  EXPECT_GT(result.end_time, 0.0);
  EXPECT_FALSE(result.curve.empty());
}

TEST(SimulatorTest, ModeledRunsAreDeterministic) {
  const Dataset d = TinyDataset();
  StreamSimulator sim(&d, ModeledOptions(10, 0.0));
  const JaccardMatcher matcher(0.4);
  PierAdapter a(PierFor(d, PierStrategy::kIPes));
  PierAdapter b(PierFor(d, PierStrategy::kIPes));
  const RunResult ra = sim.Run(a, matcher);
  const RunResult rb = sim.Run(b, matcher);
  EXPECT_EQ(ra.comparisons_executed, rb.comparisons_executed);
  EXPECT_EQ(ra.matches_found, rb.matches_found);
  EXPECT_DOUBLE_EQ(ra.end_time, rb.end_time);
}

TEST(SimulatorTest, TimeBudgetTruncatesRun) {
  const Dataset d = TinyDataset();
  SimulatorOptions options = ModeledOptions(10, 0.0);
  options.time_budget_s = 1e-4;
  StreamSimulator sim(&d, options);
  PierAdapter alg(PierFor(d, PierStrategy::kIPes));
  const JaccardMatcher matcher(0.4);
  const RunResult result = sim.Run(alg, matcher);
  EXPECT_LT(result.end_time, 0.1);
  SimulatorOptions full = ModeledOptions(10, 0.0);
  StreamSimulator sim_full(&d, full);
  PierAdapter alg2(PierFor(d, PierStrategy::kIPes));
  const RunResult unbounded = sim_full.Run(alg2, matcher);
  EXPECT_LT(result.matches_found, unbounded.matches_found);
}

TEST(SimulatorTest, SlowStreamDelaysConsumption) {
  const Dataset d = TinyDataset();
  const JaccardMatcher matcher(0.4);
  // 5 increments at 2/s: the last increment cannot arrive before 2 s.
  StreamSimulator sim(&d, ModeledOptions(5, 2.0));
  PierAdapter alg(PierFor(d, PierStrategy::kIPes));
  const RunResult result = sim.Run(alg, matcher);
  EXPECT_GE(result.stream_consumed_at, 2.0);
  EXPECT_GE(result.end_time, result.stream_consumed_at);
}

TEST(SimulatorTest, ArrivalTimestampsOnCurve) {
  const Dataset d = TinyDataset();
  const JaccardMatcher matcher(0.4);
  StreamSimulator sim(&d, ModeledOptions(4, 1.0));
  PierAdapter alg(PierFor(d, PierStrategy::kIPes));
  const RunResult result = sim.Run(alg, matcher);
  // Matches of late increments cannot be found before those
  // increments arrived.
  EXPECT_LT(result.curve.MatchesAtTime(0.5),
            result.matches_found);
}

TEST(SimulatorTest, BackpressureMakesIBaseSlowerThanStream) {
  // Expensive matcher + fast stream: I-BASE must fall behind (consumed
  // time far beyond the nominal 20 ms stream duration), because it
  // refuses the next increment until its pending comparisons finish.
  MoviesOptions movie_options;
  movie_options.source0_count = 300;
  movie_options.source1_count = 300;
  const Dataset d = GenerateMovies(movie_options);
  const EditDistanceMatcher matcher(0.8);
  SimulatorOptions options = ModeledOptions(20, 1000.0);
  StreamSimulator sim(&d, options);
  IBase ibase(d.kind, BlockingOptions{});
  const RunResult result = sim.Run(ibase, matcher);
  ASSERT_GE(result.stream_consumed_at, 0.0);
  EXPECT_GT(result.stream_consumed_at, 5.0 * (20.0 / 1000.0));
}

TEST(SimulatorTest, IBaseEventualQualityOnSlowStream) {
  const Dataset d = TinyDataset();
  const JaccardMatcher matcher(0.4);
  StreamSimulator sim(&d, ModeledOptions(10, 0.0));
  IBase ibase(d.kind, BlockingOptions{});
  const RunResult result = sim.Run(ibase, matcher);
  EXPECT_GT(result.FinalPc(), 0.5);
}

void ExpectStrictlyMonotoneCurve(const RunResult& result) {
  const auto& points = result.curve.points();
  ASSERT_FALSE(points.empty());
  for (size_t i = 1; i < points.size(); ++i) {
    // Strictly increasing comparisons (in particular: no duplicate
    // comparison counts, which the old unconditional terminal point
    // used to produce), monotone matches and time.
    EXPECT_GT(points[i].comparisons, points[i - 1].comparisons)
        << "at point " << i;
    EXPECT_GE(points[i].matches_found, points[i - 1].matches_found)
        << "at point " << i;
    EXPECT_GE(points[i].time, points[i - 1].time) << "at point " << i;
  }
  EXPECT_EQ(points.back().comparisons, result.comparisons_executed);
  EXPECT_EQ(points.back().matches_found, result.matches_found);
}

TEST(SimulatorTest, CurveStrictlyMonotoneInComparisons) {
  const Dataset d = TinyDataset();
  const JaccardMatcher matcher(0.4);
  for (const PierStrategy strategy :
       {PierStrategy::kIPcs, PierStrategy::kIPbs, PierStrategy::kIPes}) {
    StreamSimulator sim(&d, ModeledOptions(10, 0.0));
    PierAdapter alg(PierFor(d, strategy));
    ExpectStrictlyMonotoneCurve(sim.Run(alg, matcher));
  }
}

TEST(SimulatorTest, CurveStrictlyMonotoneWhenBudgetTruncates) {
  // A budget-truncated run ends mid-stream; the terminal point must
  // still not duplicate the comparison count of the last batch point.
  const Dataset d = TinyDataset();
  const JaccardMatcher matcher(0.4);
  SimulatorOptions options = ModeledOptions(10, 0.0);
  options.time_budget_s = 1e-4;
  StreamSimulator sim(&d, options);
  PierAdapter alg(PierFor(d, PierStrategy::kIPes));
  ExpectStrictlyMonotoneCurve(sim.Run(alg, matcher));
}

// An algorithm that refuses increments for a fixed number of idle
// ticks after each delivery while holding no emittable work: the
// shape that used to trip the simulator's hard CHECK and now takes
// the diagnosed stall path.
class WindowedStaller : public ErAlgorithm {
 public:
  explicit WindowedStaller(int ticks_needed) : needed_(ticks_needed) {}

  WorkStats OnIncrement(std::vector<EntityProfile> profiles) override {
    (void)profiles;
    ready_ = false;
    ticks_ = 0;
    WorkStats stats;
    stats.profiles = 1;
    return stats;
  }

  std::vector<Comparison> NextBatch(WorkStats* stats) override {
    (void)stats;
    return {};
  }

  WorkStats OnIdleTick() override {
    if (++ticks_ >= needed_) ready_ = true;
    return {};
  }

  bool ReadyForIncrement() const override { return ready_; }

  const EntityProfile& Profile(ProfileId id) const override {
    (void)id;
    static const EntityProfile kEmpty;
    return kEmpty;
  }

  const char* name() const override { return "windowed-staller"; }

 private:
  int needed_;
  int ticks_ = 0;
  bool ready_ = true;
};

TEST(SimulatorTest, StallingAlgorithmIsDiagnosedNotCrashed) {
  const Dataset d = TinyDataset();
  const JaccardMatcher matcher(0.4);
  // Fast stream (all increments due immediately) + an algorithm that
  // needs 3 idle ticks between deliveries: every delivery is followed
  // by refused-but-due ticks.
  StreamSimulator sim(&d, ModeledOptions(8, 1000.0));
  WindowedStaller alg(/*ticks_needed=*/3);
  const RunResult result = sim.Run(alg, matcher);
  EXPECT_GT(result.stalled_ticks, 0u);
  EXPECT_FALSE(result.stall_aborted);
  // The stream is still fully consumed: stalls cost virtual time but
  // do not wedge the run.
  EXPECT_GE(result.stream_consumed_at, 0.0);
}

TEST(SimulatorTest, PermanentStallHitsLimitAndAborts) {
  const Dataset d = TinyDataset();
  const JaccardMatcher matcher(0.4);
  SimulatorOptions options = ModeledOptions(8, 1000.0);
  options.stall_limit = 50;
  StreamSimulator sim(&d, options);
  // Never becomes ready again after the first increment.
  WindowedStaller alg(/*ticks_needed=*/1 << 30);
  const RunResult result = sim.Run(alg, matcher);
  EXPECT_TRUE(result.stall_aborted);
  EXPECT_GE(result.stalled_ticks, 50u);
  // Terminated without consuming the stream (and without crashing).
  EXPECT_LT(result.stream_consumed_at, 0.0);
}

TEST(SimulatorTest, WellBehavedRunHasNoStalls) {
  const Dataset d = TinyDataset();
  const JaccardMatcher matcher(0.4);
  StreamSimulator sim(&d, ModeledOptions(10, 0.0));
  PierAdapter alg(PierFor(d, PierStrategy::kIPes));
  const RunResult result = sim.Run(alg, matcher);
  EXPECT_EQ(result.stalled_ticks, 0u);
  EXPECT_FALSE(result.stall_aborted);
}

TEST(SimulatorTest, SplitCoversWholeDataset) {
  const Dataset d = TinyDataset();
  StreamSimulator sim(&d, ModeledOptions(7, 1.0));
  size_t total = 0;
  for (const auto& inc : sim.increments()) total += inc.size();
  EXPECT_EQ(total, d.profiles.size());
}

TEST(ReportTest, CurveCsvHasHeaderAndRows) {
  RunResult run;
  run.algorithm = "X";
  run.total_true_matches = 4;
  run.curve.Add({0.0, 0, 0});
  run.curve.Add({1.0, 10, 2});
  std::ostringstream out;
  PrintCurveCsv(out, {run});
  const std::string text = out.str();
  EXPECT_NE(text.find("series,time_s,comparisons,matches,pc"),
            std::string::npos);
  EXPECT_NE(text.find("X,1.0000,10,2,0.5000"), std::string::npos);
}

TEST(ReportTest, SummaryTablePrintsAllRuns) {
  RunResult a;
  a.algorithm = "ALG-A";
  a.total_true_matches = 1;
  a.curve.Add({0.0, 1, 1});
  RunResult b;
  b.algorithm = "ALG-B";
  b.total_true_matches = 1;
  std::ostringstream out;
  PrintSummaryTable(out, {a, b}, 10.0);
  EXPECT_NE(out.str().find("ALG-A"), std::string::npos);
  EXPECT_NE(out.str().find("ALG-B"), std::string::npos);
}

}  // namespace
}  // namespace pier
