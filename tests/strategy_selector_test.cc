// Tests for the strategy-selection heuristic (the paper's future-work
// feature): relational-style data should map to I-PBS, heterogeneous
// web-style data to I-PES, as the evaluation (Section 7.2.3/7.3.1)
// found empirically.

#include <gtest/gtest.h>

#include "blocking/block_collection.h"
#include "core/strategy_selector.h"
#include "datagen/generators.h"
#include "model/profile_store.h"
#include "model/token_dictionary.h"
#include "text/tokenizer.h"

namespace pier {
namespace {

struct Ingested {
  TokenDictionary dict;
  ProfileStore profiles;
  BlockCollection blocks;

  explicit Ingested(const Dataset& d) : blocks(d.kind) {
    Tokenizer tokenizer;
    for (auto p : d.profiles) {
      tokenizer.TokenizeProfile(p, dict);
      blocks.AddProfile(p);
      profiles.Add(std::move(p));
    }
  }
};

TEST(StrategySelectorTest, EmptyDataDefaultsToIPes) {
  ProfileStore profiles;
  BlockCollection blocks(DatasetKind::kDirty);
  const auto rec = RecommendStrategy(blocks, profiles);
  EXPECT_EQ(rec.strategy, PierStrategy::kIPes);
  EXPECT_FALSE(rec.rationale.empty());
}

TEST(StrategySelectorTest, CensusMapsToIPbs) {
  CensusOptions options;
  options.num_records = 2000;
  const Dataset d = GenerateCensus(options);
  Ingested state(d);
  const auto rec = RecommendStrategy(state.blocks, state.profiles);
  EXPECT_EQ(rec.strategy, PierStrategy::kIPbs) << rec.rationale;
  EXPECT_LE(rec.mean_value_length, 12.0);
}

TEST(StrategySelectorTest, DbpediaMapsToIPes) {
  DbpediaOptions options;
  options.source0_count = 800;
  options.source1_count = 1000;
  const Dataset d = GenerateDbpedia(options);
  Ingested state(d);
  const auto rec = RecommendStrategy(state.blocks, state.profiles);
  EXPECT_EQ(rec.strategy, PierStrategy::kIPes) << rec.rationale;
}

TEST(StrategySelectorTest, MoviesMapsToIPes) {
  MoviesOptions options;
  options.source0_count = 800;
  options.source1_count = 700;
  const Dataset d = GenerateMovies(options);
  Ingested state(d);
  const auto rec = RecommendStrategy(state.blocks, state.profiles);
  EXPECT_EQ(rec.strategy, PierStrategy::kIPes) << rec.rationale;
}

TEST(StrategySelectorTest, ReportsSignals) {
  CensusOptions options;
  options.num_records = 500;
  const Dataset d = GenerateCensus(options);
  Ingested state(d);
  const auto rec = RecommendStrategy(state.blocks, state.profiles);
  EXPECT_GT(rec.mean_tokens_per_profile, 0.0);
  EXPECT_GT(rec.mean_value_length, 0.0);
  EXPECT_GE(rec.small_block_share, 0.0);
  EXPECT_LE(rec.small_block_share, 1.0);
  EXPECT_FALSE(rec.rationale.empty());
}

}  // namespace
}  // namespace pier
