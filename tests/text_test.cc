// Tests for src/text: normalization, token splitting, and profile
// tokenization (the schema-agnostic Data Reading step).

#include <gtest/gtest.h>

#include "model/token_dictionary.h"
#include "text/tokenizer.h"

namespace pier {
namespace {

TEST(TokenizerTest, NormalizeLowercasesAndStripsPunctuation) {
  EXPECT_EQ(Tokenizer::Normalize("Hello, World!"), "hello  world ");
  EXPECT_EQ(Tokenizer::Normalize("A-B_C.D"), "a b c d");
  EXPECT_EQ(Tokenizer::Normalize("2023"), "2023");
}

TEST(TokenizerTest, SplitDropsShortTokens) {
  Tokenizer tokenizer;  // min length 2
  const auto tokens = tokenizer.Split("a bc def g hi");
  EXPECT_EQ(tokens, (std::vector<std::string>{"bc", "def", "hi"}));
}

TEST(TokenizerTest, SplitRespectsMinLengthOption) {
  TokenizerOptions options;
  options.min_token_length = 1;
  Tokenizer tokenizer(options);
  const auto tokens = tokenizer.Split("a bc");
  EXPECT_EQ(tokens, (std::vector<std::string>{"a", "bc"}));
}

TEST(TokenizerTest, SplitTruncatesLongTokens) {
  TokenizerOptions options;
  options.max_token_length = 4;
  Tokenizer tokenizer(options);
  const auto tokens = tokenizer.Split("abcdefgh");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "abcd");
}

TEST(TokenizerTest, SplitEmptyAndWhitespaceOnly) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Split("").empty());
  EXPECT_TRUE(tokenizer.Split("   .,;  ").empty());
}

TEST(TokenizerTest, TokenizeProfileProducesSortedUniqueTokens) {
  Tokenizer tokenizer;
  TokenDictionary dict;
  EntityProfile p(0, 0,
                  {{"title", "deep blue sea"}, {"subtitle", "blue sea"}});
  tokenizer.TokenizeProfile(p, dict);
  ASSERT_EQ(p.tokens().size(), 3u);  // deep, blue, sea deduplicated
  EXPECT_TRUE(std::is_sorted(p.tokens().begin(), p.tokens().end()));
}

TEST(TokenizerTest, TokenizeProfileIgnoresAttributeNames) {
  Tokenizer tokenizer;
  TokenDictionary dict;
  EntityProfile p(0, 0, {{"some_attribute_name", "value"}});
  tokenizer.TokenizeProfile(p, dict);
  EXPECT_EQ(p.tokens().size(), 1u);
  EXPECT_EQ(dict.Lookup("value"), p.tokens()[0]);
  EXPECT_EQ(dict.Lookup("some_attribute_name"), kInvalidTokenId);
}

TEST(TokenizerTest, TokenizeProfileFillsFlatText) {
  Tokenizer tokenizer;
  TokenDictionary dict;
  EntityProfile p(0, 0, {{"a", "Foo Bar"}, {"b", "Baz"}});
  tokenizer.TokenizeProfile(p, dict);
  EXPECT_EQ(p.flat_text(), "foo bar baz");
}

TEST(TokenizerTest, TokenizeProfileBumpsDocFrequencyOncePerProfile) {
  Tokenizer tokenizer;
  TokenDictionary dict;
  EntityProfile p(0, 0, {{"a", "word word word"}});
  tokenizer.TokenizeProfile(p, dict);
  EXPECT_EQ(dict.DocFrequency(dict.Lookup("word")), 1u);

  EntityProfile q(1, 0, {{"x", "word"}});
  tokenizer.TokenizeProfile(q, dict);
  EXPECT_EQ(dict.DocFrequency(dict.Lookup("word")), 2u);
}

TEST(TokenizerTest, SharedDictionaryAcrossProfiles) {
  Tokenizer tokenizer;
  TokenDictionary dict;
  EntityProfile p(0, 0, {{"a", "common"}});
  EntityProfile q(1, 1, {{"b", "common"}});
  tokenizer.TokenizeProfile(p, dict);
  tokenizer.TokenizeProfile(q, dict);
  ASSERT_EQ(p.tokens().size(), 1u);
  ASSERT_EQ(q.tokens().size(), 1u);
  EXPECT_EQ(p.tokens()[0], q.tokens()[0]);  // same block key
}

TEST(TokenizerTest, EmptyProfile) {
  Tokenizer tokenizer;
  TokenDictionary dict;
  EntityProfile p(0, 0, {});
  tokenizer.TokenizeProfile(p, dict);
  EXPECT_TRUE(p.tokens().empty());
  EXPECT_TRUE(p.flat_text().empty());
}

}  // namespace
}  // namespace pier
