// ThreadPool: task completion, exception propagation through futures,
// and the drain-on-shutdown guarantee (pending tasks still run).

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace pier {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.Submit([] {});
  f.get();
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] {});
  auto bad = pool.Submit([] { throw std::runtime_error("task failed"); });
  ok.get();
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; }).get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingWork) {
  std::atomic<int> completed{0};
  constexpr int kTasks = 64;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++completed;
      });
    }
    // Destructor runs with most tasks still queued; it must drain
    // them all before joining.
  }
  EXPECT_EQ(completed.load(), kTasks);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&] {
      const int now = ++in_flight;
      int seen = max_in_flight.load();
      while (now > seen && !max_in_flight.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      --in_flight;
    }));
  }
  for (auto& f : futures) f.get();
  // With 4 workers and 5ms tasks at least two must have overlapped
  // (even a 1-core machine overlaps across the sleep).
  EXPECT_GE(max_in_flight.load(), 2);
}

}  // namespace
}  // namespace pier
