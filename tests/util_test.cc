// Tests for src/util: bounded priority queue (including randomized
// differential tests against a multiset oracle), Bloom filters,
// deterministic RNG, moving averages, CSV escaping, and hashing.

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/bloom_filter.h"
#include "util/bounded_priority_queue.h"
#include "util/counting_bloom_filter.h"
#include "util/csv_writer.h"
#include "util/hashing.h"
#include "util/moving_average.h"
#include "util/rng.h"
#include "util/scalable_bloom_filter.h"
#include "util/stopwatch.h"

namespace pier {
namespace {

// ---------------------------------------------------------------------------
// BoundedPriorityQueue
// ---------------------------------------------------------------------------

TEST(BoundedPriorityQueueTest, EmptyQueueBasics) {
  BoundedPriorityQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedPriorityQueueTest, SingleElement) {
  BoundedPriorityQueue<int> q;
  q.Push(42);
  EXPECT_EQ(q.PeekMax(), 42);
  EXPECT_EQ(q.PeekMin(), 42);
  EXPECT_EQ(q.PopMax(), 42);
  EXPECT_TRUE(q.empty());
}

TEST(BoundedPriorityQueueTest, TwoElementsOrdered) {
  BoundedPriorityQueue<int> q;
  q.Push(5);
  q.Push(9);
  EXPECT_EQ(q.PeekMin(), 5);
  EXPECT_EQ(q.PeekMax(), 9);
}

TEST(BoundedPriorityQueueTest, PopMaxDescendingOrder) {
  BoundedPriorityQueue<int> q;
  for (const int x : {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}) q.Push(x);
  std::vector<int> popped;
  while (!q.empty()) popped.push_back(q.PopMax());
  EXPECT_TRUE(std::is_sorted(popped.rbegin(), popped.rend()));
  EXPECT_EQ(popped.front(), 9);
  EXPECT_EQ(popped.back(), 1);
}

TEST(BoundedPriorityQueueTest, PopMinAscendingOrder) {
  BoundedPriorityQueue<int> q;
  for (const int x : {3, 1, 4, 1, 5, 9, 2, 6}) q.Push(x);
  std::vector<int> popped;
  while (!q.empty()) popped.push_back(q.PopMin());
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
}

TEST(BoundedPriorityQueueTest, PushBoundedEvictsMinimum) {
  BoundedPriorityQueue<int> q(3);
  EXPECT_TRUE(q.PushBounded(1));
  EXPECT_TRUE(q.PushBounded(2));
  EXPECT_TRUE(q.PushBounded(3));
  // Full: 4 replaces the minimum (1).
  EXPECT_TRUE(q.PushBounded(4));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.PeekMin(), 2);
  EXPECT_EQ(q.PeekMax(), 4);
}

TEST(BoundedPriorityQueueTest, PushBoundedRejectsWorseThanMin) {
  BoundedPriorityQueue<int> q(2);
  q.PushBounded(10);
  q.PushBounded(20);
  EXPECT_FALSE(q.PushBounded(5));
  EXPECT_FALSE(q.PushBounded(10));  // equal to min: rejected
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.PeekMin(), 10);
}

TEST(BoundedPriorityQueueTest, ZeroCapacityRejectsEverything) {
  BoundedPriorityQueue<int> q(0);
  EXPECT_FALSE(q.PushBounded(1));
  EXPECT_TRUE(q.empty());
}

TEST(BoundedPriorityQueueTest, CustomComparator) {
  // Greater-comparator flips semantics: PopMax yields the smallest.
  BoundedPriorityQueue<int, std::greater<int>> q;
  for (const int x : {5, 2, 8, 1}) q.Push(x);
  EXPECT_EQ(q.PopMax(), 1);
  EXPECT_EQ(q.PopMax(), 2);
}

TEST(BoundedPriorityQueueTest, ClearResets) {
  BoundedPriorityQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Clear();
  EXPECT_TRUE(q.empty());
  q.Push(7);
  EXPECT_EQ(q.PeekMax(), 7);
}

// Differential test: random interleavings of push/pop against a
// multiset oracle, parameterized over seed and capacity.
class BoundedPqDifferentialTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(BoundedPqDifferentialTest, MatchesMultisetOracle) {
  const auto [seed, capacity] = GetParam();
  Rng rng(seed);
  BoundedPriorityQueue<int> q(capacity);
  std::multiset<int> oracle;

  for (int step = 0; step < 3000; ++step) {
    const uint64_t op = rng.UniformInt(0, 9);
    if (op < 6) {
      const int x = static_cast<int>(rng.UniformInt(0, 999));
      const bool inserted = q.PushBounded(x);
      // Oracle semantics: insert; when above capacity evict the min,
      // unless the new element IS (tied with) the min.
      if (oracle.size() < capacity) {
        oracle.insert(x);
        EXPECT_TRUE(inserted);
      } else if (!oracle.empty() && *oracle.begin() < x) {
        oracle.erase(oracle.begin());
        oracle.insert(x);
        EXPECT_TRUE(inserted);
      } else {
        EXPECT_FALSE(inserted);
      }
    } else if (op < 8) {
      ASSERT_EQ(q.empty(), oracle.empty());
      if (!oracle.empty()) {
        EXPECT_EQ(q.PopMax(), *std::prev(oracle.end()));
        oracle.erase(std::prev(oracle.end()));
      }
    } else {
      ASSERT_EQ(q.empty(), oracle.empty());
      if (!oracle.empty()) {
        EXPECT_EQ(q.PopMin(), *oracle.begin());
        oracle.erase(oracle.begin());
      }
    }
    ASSERT_EQ(q.size(), oracle.size());
    if (!oracle.empty()) {
      ASSERT_EQ(q.PeekMax(), *std::prev(oracle.end()));
      ASSERT_EQ(q.PeekMin(), *oracle.begin());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundedPqDifferentialTest,
    ::testing::Combine(
        ::testing::Values(1u, 2u, 3u, 17u, 99u),
        ::testing::Values(size_t{1}, size_t{2}, size_t{7}, size_t{64},
                          BoundedPriorityQueue<int>::kUnbounded)));

// Interleaved property test mixing *unconditional* Push with
// PushBounded and both pop ends against a multiset oracle. Push may
// legally grow the queue past its capacity (PushBounded then evicts
// without shrinking below the actual size), and the tiny capacities
// exercise the size<=2 special cases of the interval heap.
TEST(BoundedPriorityQueueTest, InterleavedPushPushBoundedPopsMatchOracle) {
  Rng rng(20240806);
  for (size_t capacity = 1; capacity <= 10; ++capacity) {
    BoundedPriorityQueue<int> q(capacity);
    std::multiset<int> oracle;
    for (int step = 0; step < 4000; ++step) {
      const uint64_t op = rng.UniformInt(0, 9);
      // Small value range so ties are common.
      const int x = static_cast<int>(rng.UniformInt(0, 31));
      if (op < 3) {
        q.Push(x);
        oracle.insert(x);
      } else if (op < 6) {
        const bool inserted = q.PushBounded(x);
        if (oracle.size() < capacity) {
          oracle.insert(x);
          ASSERT_TRUE(inserted);
        } else if (*oracle.begin() < x) {
          oracle.erase(oracle.begin());
          oracle.insert(x);
          ASSERT_TRUE(inserted);
        } else {
          ASSERT_FALSE(inserted);
        }
      } else if (op < 8) {
        ASSERT_EQ(q.empty(), oracle.empty());
        if (!oracle.empty()) {
          ASSERT_EQ(q.PopMax(), *std::prev(oracle.end()));
          oracle.erase(std::prev(oracle.end()));
        }
      } else {
        ASSERT_EQ(q.empty(), oracle.empty());
        if (!oracle.empty()) {
          ASSERT_EQ(q.PopMin(), *oracle.begin());
          oracle.erase(oracle.begin());
        }
      }
      ASSERT_EQ(q.size(), oracle.size());
      if (!oracle.empty()) {
        ASSERT_EQ(q.PeekMax(), *std::prev(oracle.end()));
        ASSERT_EQ(q.PeekMin(), *oracle.begin());
      }
    }
    // Drain alternating ends; the remaining contents must match too.
    bool from_max = true;
    while (!oracle.empty()) {
      if (from_max) {
        ASSERT_EQ(q.PopMax(), *std::prev(oracle.end()));
        oracle.erase(std::prev(oracle.end()));
      } else {
        ASSERT_EQ(q.PopMin(), *oracle.begin());
        oracle.erase(oracle.begin());
      }
      from_max = !from_max;
    }
    ASSERT_TRUE(q.empty());
  }
}

// ---------------------------------------------------------------------------
// BloomFilter / ScalableBloomFilter
// ---------------------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(1000, 0.01);
  for (uint64_t k = 0; k < 1000; ++k) filter.Add(k * 7919);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_TRUE(filter.MayContain(k * 7919)) << k;
  }
}

TEST(BloomFilterTest, FalsePositiveRateNearDesign) {
  BloomFilter filter(5000, 0.01);
  for (uint64_t k = 0; k < 5000; ++k) filter.Add(Mix64(k));
  size_t false_positives = 0;
  const size_t probes = 20000;
  for (uint64_t k = 0; k < probes; ++k) {
    if (filter.MayContain(Mix64(k + 1000000))) ++false_positives;
  }
  const double rate =
      static_cast<double>(false_positives) / static_cast<double>(probes);
  EXPECT_LT(rate, 0.03);  // 3x headroom over the 1% design point
}

TEST(BloomFilterTest, TracksCapacity) {
  BloomFilter filter(10, 0.1);
  EXPECT_FALSE(filter.AtCapacity());
  for (uint64_t k = 0; k < 10; ++k) filter.Add(k);
  EXPECT_TRUE(filter.AtCapacity());
}

TEST(BloomFilterTest, HashCountDerivedFromClampedBits) {
  // Regression: for tiny capacities m = ceil(-n ln p / ln^2 2) clamps
  // up to 64 bits, and k must follow the clamped bit count -- k =
  // round(num_bits / n * ln 2) -- not the unclamped m. Deriving k from
  // the pre-clamp m under-hashes the (larger) actual array and pushes
  // the realized FP rate off-design.
  constexpr double kLn2 = 0.6931471805599453;
  for (size_t n = 1; n <= 8; ++n) {
    const BloomFilter filter(n, 0.01);
    EXPECT_GE(filter.num_bits(), 64u);
    const int expected = std::max(
        1, static_cast<int>(std::round(
               static_cast<double>(filter.num_bits()) /
               static_cast<double>(n) * kLn2)));
    EXPECT_EQ(filter.num_hashes(), expected) << "n=" << n;
  }
}

TEST(BloomFilterTest, SmallCapacityFalsePositiveRateNearDesign) {
  // At the clamp boundary the filter must still meet (or beat) its
  // design FP rate: with k sized for the clamped 64-bit array the rate
  // is far below 1%; with k sized for the unclamped m it is not.
  for (const size_t n : {2u, 4u, 8u}) {
    BloomFilter filter(n, 0.01);
    for (uint64_t k = 0; k < n; ++k) filter.Add(Mix64(k));
    size_t false_positives = 0;
    const size_t probes = 20000;
    for (uint64_t k = 0; k < probes; ++k) {
      if (filter.MayContain(Mix64(k + 500000))) ++false_positives;
    }
    const double rate =
        static_cast<double>(false_positives) / static_cast<double>(probes);
    EXPECT_LT(rate, 0.02) << "n=" << n;
    // No false negatives, as always.
    for (uint64_t k = 0; k < n; ++k) EXPECT_TRUE(filter.MayContain(Mix64(k)));
  }
}

TEST(ScalableBloomFilterTest, GrowsSlices) {
  ScalableBloomFilter::Options options;
  options.initial_capacity = 64;
  ScalableBloomFilter filter(options);
  EXPECT_EQ(filter.num_slices(), 1u);
  for (uint64_t k = 0; k < 1000; ++k) filter.Add(k);
  EXPECT_GT(filter.num_slices(), 1u);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_TRUE(filter.MayContain(k));
  }
}

TEST(ScalableBloomFilterTest, TestAndAddSemantics) {
  ScalableBloomFilter filter;
  EXPECT_FALSE(filter.TestAndAdd(123));
  EXPECT_TRUE(filter.TestAndAdd(123));
}

TEST(ScalableBloomFilterTest, CompoundFalsePositiveRateBounded) {
  ScalableBloomFilter::Options options;
  options.initial_capacity = 256;
  options.fp_rate = 0.01;
  ScalableBloomFilter filter(options);
  for (uint64_t k = 0; k < 20000; ++k) filter.Add(Mix64(k));
  size_t false_positives = 0;
  const size_t probes = 20000;
  for (uint64_t k = 0; k < probes; ++k) {
    if (filter.MayContain(Mix64(k + (1ULL << 40)))) ++false_positives;
  }
  const double rate =
      static_cast<double>(false_positives) / static_cast<double>(probes);
  EXPECT_LT(rate, 0.05);
}

TEST(ScalableBloomFilterTest, MemoryGrowsSubquadratically) {
  ScalableBloomFilter::Options options;
  options.initial_capacity = 128;
  ScalableBloomFilter filter(options);
  for (uint64_t k = 0; k < 10000; ++k) filter.Add(k);
  // ~10k keys at 1% should stay far below a megabyte.
  EXPECT_LT(filter.MemoryBytes(), 1u << 20);
}

// ---------------------------------------------------------------------------
// UnionFrom (shard-merge filter consolidation)
// ---------------------------------------------------------------------------

TEST(BloomFilterTest, UnionFromNoFalseNegatives) {
  // Property: after a.UnionFrom(b), every key added to either side
  // must still be MayContain in a, across random disjoint key sets.
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    BloomFilter a(2000, 0.01);
    BloomFilter b(2000, 0.01);
    std::vector<uint64_t> a_keys;
    std::vector<uint64_t> b_keys;
    const size_t na = rng.UniformInt(0, 1000);
    const size_t nb = rng.UniformInt(0, 1000);
    for (size_t i = 0; i < na; ++i) a_keys.push_back(Mix64(rng.NextU64()));
    for (size_t i = 0; i < nb; ++i) b_keys.push_back(Mix64(rng.NextU64()));
    for (const uint64_t k : a_keys) a.Add(k);
    for (const uint64_t k : b_keys) b.Add(k);
    ASSERT_TRUE(a.UnionFrom(b));
    for (const uint64_t k : a_keys) EXPECT_TRUE(a.MayContain(k));
    for (const uint64_t k : b_keys) EXPECT_TRUE(a.MayContain(k));
  }
}

TEST(BloomFilterTest, UnionFromRejectsMismatchedSizing) {
  BloomFilter a(1000, 0.01);
  BloomFilter other_items(2000, 0.01);
  BloomFilter other_rate(1000, 0.05);
  a.Add(7);
  EXPECT_FALSE(a.UnionFrom(other_items));
  EXPECT_FALSE(a.UnionFrom(other_rate));
  EXPECT_TRUE(a.MayContain(7));  // untouched on rejection
}

TEST(BloomFilterTest, UnionFromSelfIsNoOp) {
  BloomFilter a(100, 0.01);
  a.Add(1);
  a.Add(2);
  const size_t before = a.num_insertions();
  EXPECT_TRUE(a.UnionFrom(a));
  EXPECT_EQ(a.num_insertions(), before);
  EXPECT_TRUE(a.MayContain(1));
}

TEST(ScalableBloomFilterTest, UnionFromMergesMultiSliceFilters) {
  ScalableBloomFilter::Options options;
  options.initial_capacity = 64;
  ScalableBloomFilter a(options);
  ScalableBloomFilter b(options);
  // Grow both past one slice, to different slice counts.
  for (uint64_t k = 0; k < 300; ++k) a.Add(Mix64(k));
  for (uint64_t k = 1000; k < 2200; ++k) b.Add(Mix64(k));
  ASSERT_GT(b.num_slices(), a.num_slices());
  ASSERT_TRUE(a.UnionFrom(b));
  for (uint64_t k = 0; k < 300; ++k) EXPECT_TRUE(a.MayContain(Mix64(k)));
  for (uint64_t k = 1000; k < 2200; ++k) EXPECT_TRUE(a.MayContain(Mix64(k)));
  EXPECT_EQ(a.num_slices(), b.num_slices());
}

TEST(ScalableBloomFilterTest, UnionFromRejectsMismatchedOptions) {
  ScalableBloomFilter::Options options;
  options.initial_capacity = 64;
  ScalableBloomFilter a(options);
  options.fp_rate = 0.02;
  ScalableBloomFilter b(options);
  a.Add(5);
  EXPECT_FALSE(a.UnionFrom(b));
  EXPECT_TRUE(a.MayContain(5));
}

TEST(ScalableBloomFilterTest, UnionResultSnapshotRestoreRoundTrips) {
  // The saturating insertion bookkeeping must keep the merged filter's
  // snapshot acceptable to Restore (every non-final slice exactly
  // full), and the restored filter must re-serialize byte-identically.
  ScalableBloomFilter::Options options;
  options.initial_capacity = 64;
  ScalableBloomFilter a(options);
  ScalableBloomFilter b(options);
  for (uint64_t k = 0; k < 500; ++k) a.Add(Mix64(k));
  for (uint64_t k = 5000; k < 5900; ++k) b.Add(Mix64(k));
  ASSERT_TRUE(a.UnionFrom(b));
  std::ostringstream out;
  a.Snapshot(out);
  ScalableBloomFilter restored(options);
  std::istringstream in(out.str());
  ASSERT_TRUE(restored.Restore(in));
  EXPECT_EQ(restored.num_insertions(), a.num_insertions());
  for (uint64_t k = 0; k < 500; ++k) EXPECT_TRUE(restored.MayContain(Mix64(k)));
  for (uint64_t k = 5000; k < 5900; ++k) {
    EXPECT_TRUE(restored.MayContain(Mix64(k)));
  }
  std::ostringstream again;
  restored.Snapshot(again);
  EXPECT_EQ(again.str(), out.str());
}

TEST(BloomFilterTest, BlockedLayoutNoFalseNegatives) {
  BloomFilter filter(5000, 0.01, BloomLayout::kBlocked512);
  EXPECT_EQ(filter.num_bits() % 512, 0u);
  for (uint64_t k = 0; k < 5000; ++k) filter.Add(Mix64(k));
  for (uint64_t k = 0; k < 5000; ++k) EXPECT_TRUE(filter.MayContain(Mix64(k)));
}

TEST(BloomFilterTest, BlockedLayoutFalsePositiveRateNearDesign) {
  // Split-block filters trade FP rate for single-cache-line probes;
  // the realized rate stays within a small constant of the design
  // point (wider headroom than the flat layouts).
  BloomFilter filter(10000, 0.01, BloomLayout::kBlocked512);
  for (uint64_t k = 0; k < 10000; ++k) filter.Add(Mix64(k));
  size_t false_positives = 0;
  const size_t probes = 50000;
  for (uint64_t k = 0; k < probes; ++k) {
    if (filter.MayContain(Mix64(k + 1000000))) ++false_positives;
  }
  const double rate =
      static_cast<double>(false_positives) / static_cast<double>(probes);
  EXPECT_LT(rate, 0.05);
}

TEST(BloomFilterTest, BlockedLayoutSnapshotRoundTripsAndUnions) {
  BloomFilter a(1000, 0.01, BloomLayout::kBlocked512);
  BloomFilter b(1000, 0.01, BloomLayout::kBlocked512);
  for (uint64_t k = 0; k < 600; ++k) a.Add(Mix64(k));
  for (uint64_t k = 600; k < 1000; ++k) b.Add(Mix64(k));
  ASSERT_TRUE(a.UnionFrom(b));
  for (uint64_t k = 0; k < 1000; ++k) EXPECT_TRUE(a.MayContain(Mix64(k)));

  std::ostringstream out;
  a.Snapshot(out);
  std::istringstream in(out.str());
  const auto restored = BloomFilter::FromSnapshot(in);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->layout(), BloomLayout::kBlocked512);
  EXPECT_EQ(restored->num_bits(), a.num_bits());
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_TRUE(restored->MayContain(Mix64(k)));
  }
  std::ostringstream again;
  restored->Snapshot(again);
  EXPECT_EQ(again.str(), out.str());
}

TEST(BloomFilterTest, UnionFromRejectsMismatchedLayout) {
  BloomFilter flat(1000, 0.01, BloomLayout::kFlatFastrange);
  BloomFilter blocked(1000, 0.01, BloomLayout::kBlocked512);
  EXPECT_FALSE(flat.UnionFrom(blocked));
  EXPECT_FALSE(blocked.UnionFrom(flat));
}

TEST(BloomFilterTest, LegacySnapshotRestoresAsFlatModulo) {
  // A snapshot from before the layout flag starts with a nonzero
  // expected_items u64 and carries bits placed by the modulo mapping.
  // FromSnapshot must keep probing those bits with the same mapping:
  // restoring them under fastrange would manufacture false negatives.
  BloomFilter modulo(256, 0.01, BloomLayout::kFlatModulo);
  for (uint64_t k = 0; k < 200; ++k) modulo.Add(Mix64(k));
  std::ostringstream out;
  modulo.Snapshot(out);  // kFlatModulo writes the legacy byte stream
  EXPECT_NE(out.str().substr(0, 8), std::string(8, '\0'));

  std::istringstream in(out.str());
  const auto restored = BloomFilter::FromSnapshot(in);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->layout(), BloomLayout::kFlatModulo);
  for (uint64_t k = 0; k < 200; ++k) {
    EXPECT_TRUE(restored->MayContain(Mix64(k)));
  }
  // Legacy payloads re-snapshot byte-identically (no silent upgrade).
  std::ostringstream again;
  restored->Snapshot(again);
  EXPECT_EQ(again.str(), out.str());
}

TEST(ScalableBloomFilterTest, LegacySnapshotRestoresAsFlatModulo) {
  ScalableBloomFilter::Options legacy_options;
  legacy_options.initial_capacity = 64;
  legacy_options.layout = BloomLayout::kFlatModulo;
  ScalableBloomFilter legacy(legacy_options);
  for (uint64_t k = 0; k < 500; ++k) legacy.Add(Mix64(k));
  std::ostringstream out;
  legacy.Snapshot(out);
  EXPECT_NE(out.str().substr(0, 8), std::string(8, '\0'));

  // A default-constructed (blocked-layout) filter accepts the legacy
  // payload and adopts its layout wholesale.
  ScalableBloomFilter restored;
  std::istringstream in(out.str());
  ASSERT_TRUE(restored.Restore(in));
  for (uint64_t k = 0; k < 500; ++k) EXPECT_TRUE(restored.MayContain(Mix64(k)));
  std::ostringstream again;
  restored.Snapshot(again);
  EXPECT_EQ(again.str(), out.str());
}

TEST(ScalableBloomFilterTest, BlockedDefaultGrowsAndRoundTrips) {
  ScalableBloomFilter filter;  // default options: kBlocked512 slices
  for (uint64_t k = 0; k < 20000; ++k) filter.Add(Mix64(k));
  EXPECT_GT(filter.num_slices(), 1u);
  for (uint64_t k = 0; k < 20000; ++k) EXPECT_TRUE(filter.MayContain(Mix64(k)));

  std::ostringstream out;
  filter.Snapshot(out);
  ScalableBloomFilter restored;
  std::istringstream in(out.str());
  ASSERT_TRUE(restored.Restore(in));
  for (uint64_t k = 0; k < 20000; ++k) {
    EXPECT_TRUE(restored.MayContain(Mix64(k)));
  }
  std::ostringstream again;
  restored.Snapshot(again);
  EXPECT_EQ(again.str(), out.str());
}

TEST(CountingBloomFilterTest, UnionFromNoFalseNegatives) {
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    CountingBloomFilter a(2000, 0.01);
    CountingBloomFilter b(2000, 0.01);
    std::vector<uint64_t> a_keys;
    std::vector<uint64_t> b_keys;
    const size_t na = rng.UniformInt(0, 800);
    const size_t nb = rng.UniformInt(0, 800);
    for (size_t i = 0; i < na; ++i) a_keys.push_back(Mix64(rng.NextU64()));
    for (size_t i = 0; i < nb; ++i) b_keys.push_back(Mix64(rng.NextU64()));
    for (const uint64_t k : a_keys) a.Add(k);
    for (const uint64_t k : b_keys) b.Add(k);
    ASSERT_TRUE(a.UnionFrom(b));
    for (const uint64_t k : a_keys) EXPECT_TRUE(a.MayContain(k));
    for (const uint64_t k : b_keys) EXPECT_TRUE(a.MayContain(k));
  }
}

TEST(CountingBloomFilterTest, UnionFromSurvivesRemovalOfOneSide) {
  // Keys folded in from the donor stay removable, and removing them
  // must never create a false negative for keys still present.
  CountingBloomFilter a(1000, 0.01);
  CountingBloomFilter b(1000, 0.01);
  for (uint64_t k = 0; k < 200; ++k) a.Add(Mix64(k));
  for (uint64_t k = 1000; k < 1200; ++k) b.Add(Mix64(k));
  ASSERT_TRUE(a.UnionFrom(b));
  for (uint64_t k = 1000; k < 1200; ++k) a.Remove(Mix64(k));
  for (uint64_t k = 0; k < 200; ++k) EXPECT_TRUE(a.MayContain(Mix64(k)));
}

TEST(ScalableCountingBloomFilterTest, UnionFromMergesAndRestores) {
  ScalableCountingBloomFilter::Options options;
  options.initial_capacity = 64;
  ScalableCountingBloomFilter a(options);
  ScalableCountingBloomFilter b(options);
  for (uint64_t k = 0; k < 300; ++k) a.Add(Mix64(k));
  for (uint64_t k = 2000; k < 3000; ++k) b.Add(Mix64(k));
  for (uint64_t k = 2000; k < 2050; ++k) b.Remove(Mix64(k));
  ASSERT_TRUE(a.UnionFrom(b));
  for (uint64_t k = 0; k < 300; ++k) EXPECT_TRUE(a.MayContain(Mix64(k)));
  for (uint64_t k = 2050; k < 3000; ++k) EXPECT_TRUE(a.MayContain(Mix64(k)));
  std::ostringstream out;
  a.Snapshot(out);
  ScalableCountingBloomFilter restored(options);
  std::istringstream in(out.str());
  ASSERT_TRUE(restored.Restore(in));
  for (uint64_t k = 0; k < 300; ++k) EXPECT_TRUE(restored.MayContain(Mix64(k)));
  std::ostringstream again;
  restored.Snapshot(again);
  EXPECT_EQ(again.str(), out.str());
}

TEST(ScalableCountingBloomFilterTest, UnionFromRejectsMismatchedOptions) {
  ScalableCountingBloomFilter::Options options;
  options.initial_capacity = 64;
  ScalableCountingBloomFilter a(options);
  options.growth = 3.0;
  ScalableCountingBloomFilter b(options);
  a.Add(5);
  EXPECT_FALSE(a.UnionFrom(b));
  EXPECT_TRUE(a.MayContain(5));
}

// ---------------------------------------------------------------------------
// Rng / ZipfDistribution
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t x = rng.UniformInt(10, 20);
    EXPECT_GE(x, 10u);
    EXPECT_LE(x, 20u);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(5, 5), 5u);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(ZipfTest, SkewsTowardHead) {
  Rng rng(3);
  ZipfDistribution zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[99] * 5);
  EXPECT_GT(counts[0], 1000);
}

TEST(ZipfTest, AlphaZeroIsUniformish) {
  Rng rng(3);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 10000.0, 600.0);
  }
}

TEST(ZipfTest, SamplesWithinDomain) {
  Rng rng(4);
  ZipfDistribution zipf(7, 1.2);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 7u);
}

// ---------------------------------------------------------------------------
// Moving averages
// ---------------------------------------------------------------------------

TEST(EmaTest, FirstValueInitializes) {
  Ema ema(0.5);
  EXPECT_FALSE(ema.initialized());
  ema.Add(10.0);
  EXPECT_TRUE(ema.initialized());
  EXPECT_DOUBLE_EQ(ema.value(), 10.0);
}

TEST(EmaTest, ConvergesTowardConstant) {
  Ema ema(0.3);
  ema.Add(0.0);
  for (int i = 0; i < 50; ++i) ema.Add(100.0);
  EXPECT_NEAR(ema.value(), 100.0, 0.01);
}

TEST(WindowAverageTest, MeanOfPartialWindow) {
  WindowAverage avg(4);
  avg.Add(2.0);
  avg.Add(4.0);
  EXPECT_DOUBLE_EQ(avg.Mean(), 3.0);
  EXPECT_EQ(avg.count(), 2u);
}

TEST(WindowAverageTest, SlidesOverOldValues) {
  WindowAverage avg(3);
  avg.Add(1.0);
  avg.Add(2.0);
  avg.Add(3.0);
  avg.Add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(avg.Mean(), 5.0);
  EXPECT_EQ(avg.count(), 3u);
}

TEST(WindowAverageTest, WindowOfOneTracksLast) {
  WindowAverage avg(1);
  avg.Add(5.0);
  avg.Add(9.0);
  EXPECT_DOUBLE_EQ(avg.Mean(), 9.0);
}

TEST(WindowAverageTest, NoDriftOverMillionUpdates) {
  // Regression for running-sum FP drift: a huge sample (1e16, where
  // ulp is 2) periodically passing through the window makes the
  // incremental `sum += x - old` update lose the small samples added
  // alongside it; each passage leaves an O(ulp) residue. Over ~10k
  // passages the old code drifted the mean by O(1) -- the exact
  // resummation on ring wrap keeps it exact.
  WindowAverage avg(8);
  constexpr int kUpdates = 1000000;
  for (int i = 0; i < kUpdates; ++i) {
    const bool spike = i % 97 == 0 && i < kUpdates - 1000;
    avg.Add(spike ? 1e16 : 1.0);
  }
  // The final window holds eight 1.0s; any departure is pure drift.
  EXPECT_NEAR(avg.Mean(), 1.0, 1e-9);
}

TEST(WindowAverageTest, ScaledDriftStaysBounded) {
  // Same pattern at a smaller magnitude ratio: the mean of the clean
  // tail must be exact after the spikes leave the window.
  WindowAverage avg(4);
  for (int i = 0; i < 100000; ++i) {
    avg.Add(i % 13 == 0 ? 1e12 : 0.5);
  }
  for (int i = 0; i < 8; ++i) avg.Add(0.5);
  EXPECT_NEAR(avg.Mean(), 0.5, 1e-12);
}

// ---------------------------------------------------------------------------
// CsvWriter
// ---------------------------------------------------------------------------

TEST(CsvWriterTest, PlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::Escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(CsvWriter::Escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(CsvWriter::Escape("has\nnewline"), "\"has\nnewline\"");
}

TEST(CsvWriterTest, CountsRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow({"x"});
  csv.WriteRow({"y"});
  EXPECT_EQ(csv.rows_written(), 2u);
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

TEST(HashingTest, PairKeyIsSymmetric) {
  EXPECT_EQ(PairKey(3, 9), PairKey(9, 3));
  EXPECT_NE(PairKey(3, 9), PairKey(3, 10));
}

TEST(HashingTest, PairKeyPacksLosslessly) {
  const uint64_t key = PairKey(123456, 654321);
  EXPECT_EQ(key >> 32, 123456u);
  EXPECT_EQ(key & 0xffffffffu, 654321u);
}

TEST(HashingTest, HashStringDeterministic) {
  EXPECT_EQ(HashString("hello"), HashString("hello"));
  EXPECT_NE(HashString("hello"), HashString("hellp"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(HashingTest, Mix64Scrambles) {
  EXPECT_NE(Mix64(0), 0u);
  EXPECT_NE(Mix64(1), Mix64(2));
}

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch sw;
  const double a = sw.ElapsedSeconds();
  const double b = sw.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  sw.Restart();
  EXPECT_LE(sw.ElapsedSeconds(), a + 1.0);
}

}  // namespace
}  // namespace pier
