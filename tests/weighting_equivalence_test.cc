// Equivalence of the allocation-free scratch kernel against the
// retained map-based reference: same (x, y, weight) multiset and the
// same visit count for every WeightingScheme, both DatasetKinds, and
// only_older_neighbors on/off, on seeded datagen data.

#include <algorithm>
#include <gtest/gtest.h>

#include "blocking/block_collection.h"
#include "datagen/generators.h"
#include "metablocking/weighting.h"
#include "model/profile_store.h"
#include "model/token_dictionary.h"
#include "text/tokenizer.h"

namespace pier {
namespace {

struct Workload {
  ProfileStore store;
  BlockCollection blocks;

  explicit Workload(Dataset dataset) : blocks(dataset.kind) {
    Tokenizer tokenizer;
    TokenDictionary dictionary;
    for (auto& p : dataset.profiles) {
      tokenizer.TokenizeProfile(p, dictionary);
      blocks.AddProfile(p);
      store.Add(std::move(p));
    }
  }

  std::vector<TokenId> ActiveBlocksOf(ProfileId id) const {
    std::vector<TokenId> out;
    for (const TokenId t : store.Get(id).tokens()) {
      if (blocks.IsActive(t)) out.push_back(t);
    }
    return out;
  }
};

Workload& CleanCleanWorkload() {
  static Workload& w = *new Workload([] {
    MoviesOptions options;
    options.source0_count = 300;
    options.source1_count = 250;
    return GenerateMovies(options);
  }());
  return w;
}

Workload& DirtyWorkload() {
  static Workload& w = *new Workload([] {
    CensusOptions options;
    options.num_records = 800;
    return GenerateCensus(options);
  }());
  return w;
}

// Sorts by neighbour id (x is constant within one call's output; ids
// are unique per call, so this is a total order).
void SortByNeighbor(std::vector<Comparison>& cmps) {
  std::sort(cmps.begin(), cmps.end(),
            [](const Comparison& a, const Comparison& b) { return a.y < b.y; });
}

void ExpectEquivalent(const Workload& w, WeightingScheme scheme,
                      bool only_older) {
  const WeightingContext ctx{&w.blocks, &w.store, scheme};
  WeightingScratch scratch;  // one scratch reused across all profiles
  for (ProfileId id = 0; id < w.store.size(); ++id) {
    const EntityProfile& p = w.store.Get(id);
    const std::vector<TokenId> active = w.ActiveBlocksOf(id);
    uint64_t ref_visits = 0;
    uint64_t fast_visits = 0;
    auto ref = GenerateWeightedComparisonsReference(ctx, p, active, only_older,
                                                    &ref_visits);
    auto fast = GenerateWeightedComparisons(ctx, p, active, only_older,
                                            &fast_visits, &scratch);
    EXPECT_EQ(fast_visits, ref_visits) << "profile " << id;
    ASSERT_EQ(fast.size(), ref.size()) << "profile " << id;
    SortByNeighbor(ref);
    SortByNeighbor(fast);
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(fast[i].x, ref[i].x);
      EXPECT_EQ(fast[i].y, ref[i].y);
      // Both kernels perform the identical sequence of floating-point
      // operations per neighbour, so equality is exact.
      EXPECT_EQ(fast[i].weight, ref[i].weight)
          << "profile " << id << " neighbour " << ref[i].y << " scheme "
          << ToString(scheme);
    }
  }
}

class WeightingEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<WeightingScheme, bool>> {};

TEST_P(WeightingEquivalenceTest, CleanClean) {
  const auto [scheme, only_older] = GetParam();
  ExpectEquivalent(CleanCleanWorkload(), scheme, only_older);
}

TEST_P(WeightingEquivalenceTest, Dirty) {
  const auto [scheme, only_older] = GetParam();
  ExpectEquivalent(DirtyWorkload(), scheme, only_older);
}

std::string ParamName(
    const ::testing::TestParamInfo<std::tuple<WeightingScheme, bool>>& info) {
  return std::string(ToString(std::get<0>(info.param))) +
         (std::get<1>(info.param) ? "_OlderOnly" : "_AllNeighbors");
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, WeightingEquivalenceTest,
    ::testing::Combine(::testing::Values(WeightingScheme::kCbs,
                                         WeightingScheme::kEcbs,
                                         WeightingScheme::kJs,
                                         WeightingScheme::kArcs),
                       ::testing::Bool()),
    ParamName);

// The scratch's epoch-stamped logical clear must make back-to-back
// passes independent: repeating a call on a reused scratch yields the
// identical result.
TEST(WeightingScratchTest, ReusedScratchIsStateless) {
  const Workload& w = CleanCleanWorkload();
  const WeightingContext ctx{&w.blocks, &w.store, WeightingScheme::kCbs};
  WeightingScratch scratch;
  const ProfileId id = static_cast<ProfileId>(w.store.size() - 1);
  const EntityProfile& p = w.store.Get(id);
  const std::vector<TokenId> active = w.ActiveBlocksOf(id);
  const auto first = GenerateWeightedComparisons(ctx, p, active, true, nullptr,
                                                 &scratch);
  const auto second = GenerateWeightedComparisons(ctx, p, active, true,
                                                  nullptr, &scratch);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].y, second[i].y);  // first-touch order is stable
    EXPECT_EQ(first[i].weight, second[i].weight);
  }
}

// The token-count sidecar must agree with the stored profiles.
TEST(ProfileStoreTokenCountTest, SidecarMatchesProfiles) {
  const Workload& w = DirtyWorkload();
  for (ProfileId id = 0; id < w.store.size(); ++id) {
    EXPECT_EQ(w.store.TokenCount(id), w.store.Get(id).tokens().size());
  }
}

}  // namespace
}  // namespace pier
