// Tests for work accounting (WorkStats) and its flow through the
// pipeline steps -- the quantities the ModeledCostMeter charges.

#include <gtest/gtest.h>

#include "core/pier_pipeline.h"
#include "core/prioritizer.h"
#include "stream/cost_meter.h"

namespace pier {
namespace {

TEST(WorkStatsTest, AccumulateAddsFieldwise) {
  WorkStats a;
  a.profiles = 1;
  a.tokens = 2;
  a.block_updates = 3;
  a.comparisons_generated = 4;
  a.index_ops = 5;
  WorkStats b = a;
  b += a;
  EXPECT_EQ(b.profiles, 2u);
  EXPECT_EQ(b.tokens, 4u);
  EXPECT_EQ(b.block_updates, 6u);
  EXPECT_EQ(b.comparisons_generated, 8u);
  EXPECT_EQ(b.index_ops, 10u);
}

TEST(WorkStatsTest, IngestReportsAllDimensions) {
  PierOptions options;
  options.strategy = PierStrategy::kIPes;
  PierPipeline pipeline(options);
  const WorkStats stats = pipeline.Ingest(
      {EntityProfile(0, 0, {{"a", "alpha beta"}}),
       EntityProfile(1, 0, {{"b", "alpha gamma"}})});
  EXPECT_EQ(stats.profiles, 2u);
  EXPECT_EQ(stats.tokens, 4u);
  EXPECT_EQ(stats.block_updates, 4u);
  EXPECT_EQ(stats.comparisons_generated, 1u);  // the (0,1) candidate
}

TEST(WorkStatsTest, EmitBatchTickStatsAccumulate) {
  PierOptions options;
  options.strategy = PierStrategy::kIPcs;
  PierPipeline pipeline(options);
  pipeline.Ingest({EntityProfile(0, 0, {{"a", "shared one"}}),
                   EntityProfile(1, 0, {{"a", "shared two"}})});
  // First batch takes the generated candidate; the internal ticks that
  // keep looking for more work report their scanning effort.
  WorkStats stats;
  const auto batch = pipeline.EmitBatch(100, &stats);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_GT(stats.comparisons_generated + stats.index_ops, 0u);
}

TEST(WorkStatsTest, ModeledCostMonotoneInEveryDimension) {
  const CostMeter meter(CostMeter::Mode::kModeled);
  const double base = meter.StepCost(WorkStats{}, 0.0);
  for (int field = 0; field < 5; ++field) {
    WorkStats stats;
    switch (field) {
      case 0: stats.profiles = 100; break;
      case 1: stats.tokens = 100; break;
      case 2: stats.block_updates = 100; break;
      case 3: stats.comparisons_generated = 100; break;
      default: stats.index_ops = 100; break;
    }
    EXPECT_GT(meter.StepCost(stats, 0.0), base) << field;
  }
}

TEST(WorkStatsTest, ModeledMatchCostScalesWithUnits) {
  const CostMeter meter(CostMeter::Mode::kModeled);
  EXPECT_LT(meter.MatchCost(10, 0.0), meter.MatchCost(1000000, 0.0));
}

}  // namespace
}  // namespace pier
