// pier_cli: run progressive incremental entity resolution over your
// own CSV data from the command line.
//
//   pier_cli --profiles=data.csv [--truth=truth.csv]
//            [--kind=dirty|clean-clean]
//            [--algorithm=auto|I-PCS|I-PBS|I-PES|SPER-SK|FB-PCS]
//            [--matcher=JS|ED|COS] [--threshold=0.5]
//            [--increments=100] [--rate=0] [--budget=inf]
//            [--max-block-size=1000] [--beta=0.5] [--threads=1]
//            [--frontier-seed=42] [--cost-model=measured|modeled]
//            [--metrics-out=FILE] [--metrics-interval=F]
//            [--checkpoint-dir=DIR] [--checkpoint-every=N]
//            [--checkpoint-keep=N] [--resume-from=FILE|DIR]
//            [--print-matches] [--serve-queries=N] [--ingest-shards=N]
//            [--mutation-rate=F]
//
// The profiles file uses the long format of datagen/dataset_io.h
// (profile_id,source,attribute,value). With --truth, the tool replays
// the data through the stream simulator and reports progressive
// quality; without it, it runs the pipeline and prints matched pairs.
//
// --algorithm picks the prioritization strategy (case-insensitive;
// --strategy is an accepted alias for older scripts): the paper trio
// plus the frontier strategies SPER-SK (stochastic top-k sampling,
// seeded by --frontier-seed for deterministic replay) and FB-PCS
// (verdict feedback folded back into block scores). `auto` runs the
// selector heuristic over a data sample.
//
// --metrics-out streams JSON-lines metric snapshots (see src/obs/) to
// FILE: one snapshot per --metrics-interval seconds of (virtual) run
// time, plus a final one. Stage counters cover ingest/blocking/
// prioritization (pipeline.*), match execution (executor.*), the
// adaptive-K controller (findk.*), the simulator (sim.*), and
// checkpointing (persist.*).
//
// --checkpoint-dir makes the evaluation run durable: a snapshot of the
// full ER state lands in DIR every --checkpoint-every increments
// (rotated to the newest --checkpoint-keep). After a crash,
// --resume-from=DIR (or a specific .piersnap file) continues the run
// from the latest checkpoint; with --cost-model=modeled the resumed
// curve is bit-identical to an uninterrupted run.
//
// --serve-queries=N runs the closed-loop serving mode instead: the
// data streams through the multi-threaded realtime pipeline while this
// thread issues N ClusterOf() point queries against the live cluster
// index, interleaved with ingest. Reports query latency p50/p99 (from
// the serve.* metrics), cluster statistics, and -- when --truth is
// given -- the cluster-level recall of the served index.
//
// --ingest-shards=N partitions the blocking space across N shard
// pipelines behind bounded microbatch queues with a merging combiner
// (stream/sharded_pipeline.h): same verdicts and clusters, N-way
// ingest parallelism. Applies to serving mode and to resolution mode;
// the simulator-based evaluation mode is single-engine by design
// (virtual time needs one deterministic event loop).
//
// --mutation-rate=F turns the replay into a mutable stream: after each
// increment, roughly F mutations per ingested profile are synthesized
// over the already-ingested prefix, alternating between deletes and
// corrections (a profile's content replaced by another record's
// attributes -- the late-arriving-fix workload). Implies
// mutable_stream, so the pipeline retracts the affected blocks,
// priorities, and clusters (see DESIGN.md). Applies to serving and
// resolution modes; the evaluation mode's simulator replays an
// append-only schedule and rejects it. Output caveat: the progressive
// match stream is emitted as verdicts land, so a pair whose endpoint
// is deleted later in the run was still correct when printed; sharded
// resolution prints at the end and therefore drops pairs with deleted
// endpoints.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/strategy_selector.h"
#include "datagen/dataset_io.h"
#include "eval/cluster_recall.h"
#include "eval/report.h"
#include "obs/metrics.h"
#include "obs/metrics_io.h"
#include "persist/checkpoint_manager.h"
#include "similarity/matcher.h"
#include "similarity/parallel_executor.h"
#include "stream/pier_adapter.h"
#include "stream/sharded_pipeline.h"
#include "stream/stream_simulator.h"
#include "text/tokenizer.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

std::map<std::string, std::string> ParseArgs(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      args[arg] = "1";
    } else {
      args[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return args;
}

std::string Get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: pier_cli --profiles=FILE [--truth=FILE] [--kind=dirty|"
      "clean-clean]\n"
      "                [--algorithm=auto|I-PCS|I-PBS|I-PES|SPER-SK|FB-PCS]\n"
      "                [--matcher=JS|ED|COS]\n"
      "                [--threshold=F] [--increments=N] [--rate=F] "
      "[--budget=F]\n"
      "                [--max-block-size=N] [--beta=F] [--threads=N]\n"
      "                [--frontier-seed=N] [--cost-model=measured|modeled]\n"
      "                [--metrics-out=FILE] [--metrics-interval=F]\n"
      "                [--checkpoint-dir=DIR] [--checkpoint-every=N]\n"
      "                [--checkpoint-keep=N] [--resume-from=FILE|DIR]\n"
      "                [--print-matches] [--serve-queries=N]\n"
      "                [--ingest-shards=N] [--mutation-rate=F]\n");
  return 2;
}

// Synthesizes the mutable-stream workload for --mutation-rate: after
// each increment, issues `rate * increment_size` mutations (budgeted
// fractionally so small increments still mutate at the configured
// rate) against uniformly random already-ingested ids, alternating
// deletes with corrections. Corrections splice another record's
// attributes under the victim's id, so a later correction back is
// possible and deleted ids can be revived -- the same shapes the
// mutable-stream oracle tests exercise. Deterministic across runs.
class MutationDriver {
 public:
  MutationDriver(const pier::Dataset& dataset, double rate)
      : dataset_(dataset), rate_(rate) {}

  // `ingested` is the number of profiles pushed so far (ids [0,
  // ingested) exist, possibly tombstoned); `increment_size` is the
  // increment that just landed. Returns false if a mutation was
  // rejected (stopped/poisoned pipeline).
  template <typename DeleteFn, typename UpdateFn>
  bool AfterIncrement(size_t ingested, size_t increment_size,
                      DeleteFn&& do_delete, UpdateFn&& do_update) {
    if (rate_ <= 0.0 || ingested == 0) return true;
    budget_ += rate_ * static_cast<double>(increment_size);
    while (budget_ >= 1.0) {
      budget_ -= 1.0;
      const auto id =
          static_cast<pier::ProfileId>(rng_.UniformInt(0, ingested - 1));
      if (next_is_delete_) {
        if (!do_delete(id)) return false;
        ++deletes_;
      } else {
        pier::EntityProfile replacement =
            dataset_.profiles[(static_cast<size_t>(id) * 7 + 13) %
                              dataset_.profiles.size()];
        replacement.id = id;
        if (!do_update(std::move(replacement))) return false;
        ++updates_;
      }
      next_is_delete_ = !next_is_delete_;
    }
    return true;
  }

  uint64_t deletes() const { return deletes_; }
  uint64_t updates() const { return updates_; }

 private:
  const pier::Dataset& dataset_;
  double rate_;
  double budget_ = 0.0;
  bool next_is_delete_ = true;
  uint64_t deletes_ = 0;
  uint64_t updates_ = 0;
  pier::Rng rng_{271828};
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pier;
  const auto args = ParseArgs(argc, argv);
  const std::string profiles_path = Get(args, "profiles", "");
  if (profiles_path.empty()) return Usage();

  const std::string kind_name = Get(args, "kind", "dirty");
  const DatasetKind kind = kind_name == "clean-clean"
                               ? DatasetKind::kCleanClean
                               : DatasetKind::kDirty;

  std::ifstream profiles_in(profiles_path);
  if (!profiles_in) {
    std::fprintf(stderr, "cannot open %s\n", profiles_path.c_str());
    return 1;
  }
  std::ifstream truth_in;
  std::istream* truth_ptr = nullptr;
  const std::string truth_path = Get(args, "truth", "");
  if (!truth_path.empty()) {
    truth_in.open(truth_path);
    if (!truth_in) {
      std::fprintf(stderr, "cannot open %s\n", truth_path.c_str());
      return 1;
    }
    truth_ptr = &truth_in;
  }
  auto dataset = ReadDatasetCsv(profiles_in, truth_ptr, profiles_path, kind);
  if (!dataset) {
    std::fprintf(stderr, "malformed dataset CSV\n");
    return 1;
  }
  std::fprintf(stderr, "loaded %zu profiles (%zu truth pairs)\n",
               dataset->profiles.size(), dataset->truth.size());

  // Options.
  PierOptions options;
  options.kind = kind;
  options.blocking.max_block_size =
      std::stoul(Get(args, "max-block-size", "1000"));
  options.prioritizer.beta = std::stod(Get(args, "beta", "0.5"));
  options.execution_threads = std::stoul(Get(args, "threads", "1"));

  options.prioritizer.frontier_seed =
      std::stoull(Get(args, "frontier-seed", "42"));

  // --algorithm is the canonical flag; --strategy stays as an alias
  // for older scripts. Names resolve through the registry,
  // case-insensitively.
  std::string algorithm = Get(args, "algorithm", "");
  if (algorithm.empty()) algorithm = Get(args, "strategy", "auto");
  std::string algorithm_lower = algorithm;
  std::transform(algorithm_lower.begin(), algorithm_lower.end(),
                 algorithm_lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  PierStrategy parsed_strategy;
  if (ParseAlgorithmName(algorithm, &parsed_strategy)) {
    options.strategy = parsed_strategy;
  } else if (algorithm_lower == "auto") {
    // Auto: analyze a sample with the selector heuristic.
    Tokenizer tokenizer;
    TokenDictionary dict;
    ProfileStore sample_store;
    BlockCollection sample_blocks(kind, options.blocking);
    const size_t sample = std::min<size_t>(1000, dataset->profiles.size());
    for (size_t i = 0; i < sample; ++i) {
      EntityProfile p = dataset->profiles[i];
      tokenizer.TokenizeProfile(p, dict);
      sample_blocks.AddProfile(p);
      sample_store.Add(std::move(p));
    }
    const auto rec = RecommendStrategy(sample_blocks, sample_store);
    options.strategy = rec.strategy;
    std::fprintf(stderr, "strategy: %s (%s)\n", ToString(rec.strategy),
                 rec.rationale.c_str());
  } else {
    std::fprintf(stderr,
                 "pier_cli: unknown algorithm '%s' (valid names: auto, %s)\n",
                 algorithm.c_str(), KnownAlgorithmNames());
    return 1;
  }

  const std::string matcher_name = Get(args, "matcher", "JS");
  const auto matcher =
      MakeMatcher(matcher_name, std::stod(Get(args, "threshold", "0.5")));
  if (!matcher) {
    std::fprintf(stderr,
                 "pier_cli: unknown matcher '%s' (valid names: %s)\n",
                 matcher_name.c_str(), KnownMatcherNames());
    return 1;
  }

  SimulatorOptions sim_options;
  sim_options.frontier_seed = options.prioritizer.frontier_seed;
  sim_options.num_increments = std::stoul(Get(args, "increments", "100"));
  sim_options.increments_per_second = std::stod(Get(args, "rate", "0"));
  const std::string budget = Get(args, "budget", "");
  if (!budget.empty()) sim_options.time_budget_s = std::stod(budget);
  const std::string cost_model = Get(args, "cost-model", "measured");
  if (cost_model == "modeled") {
    sim_options.cost_mode = CostMeter::Mode::kModeled;
  } else if (cost_model == "measured") {
    sim_options.cost_mode = CostMeter::Mode::kMeasured;
  } else {
    std::fprintf(stderr, "unknown --cost-model: %s\n", cost_model.c_str());
    return Usage();
  }
  sim_options.execution_threads = options.execution_threads;
  sim_options.checkpoint_dir = Get(args, "checkpoint-dir", "");
  sim_options.checkpoint_every =
      std::stoul(Get(args, "checkpoint-every", "10"));
  sim_options.checkpoint_keep = std::stoul(Get(args, "checkpoint-keep", "3"));

  // Observability: stream JSON-lines snapshots of every stage metric.
  obs::MetricsRegistry metrics;
  std::ofstream metrics_out;
  const std::string metrics_path = Get(args, "metrics-out", "");
  if (!metrics_path.empty()) {
    metrics_out.open(metrics_path);
    if (!metrics_out) {
      std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
      return 1;
    }
    options.metrics = &metrics;
    sim_options.metrics = &metrics;
    sim_options.metrics_out = &metrics_out;
    sim_options.metrics_interval_s =
        std::stod(Get(args, "metrics-interval", "1"));
  }

  const std::string resume_from = Get(args, "resume-from", "");
  if (!resume_from.empty() &&
      (truth_ptr == nullptr || args.count("print-matches"))) {
    std::fprintf(stderr,
                 "--resume-from requires evaluation mode (--truth, no "
                 "--print-matches)\n");
    return Usage();
  }

  const size_t ingest_shards = std::stoul(Get(args, "ingest-shards", "1"));
  if (ingest_shards == 0) {
    std::fprintf(stderr, "--ingest-shards must be >= 1\n");
    return Usage();
  }

  const double mutation_rate = std::stod(Get(args, "mutation-rate", "0"));
  if (mutation_rate < 0.0 || mutation_rate > 1.0) {
    std::fprintf(stderr, "--mutation-rate must be in [0, 1]\n");
    return Usage();
  }
  // Mutations need the retractable state machinery: counting executed
  // filter, pair registry, tombstone-aware cluster index.
  if (mutation_rate > 0.0) options.mutable_stream = true;
  MutationDriver mutations(*dataset, mutation_rate);

  const size_t serve_queries = std::stoul(Get(args, "serve-queries", "0"));
  if (serve_queries > 0) {
    if (!resume_from.empty() || args.count("print-matches")) {
      std::fprintf(stderr,
                   "--serve-queries is its own mode (no --resume-from / "
                   "--print-matches)\n");
      return Usage();
    }
    // Closed-loop serving mode: the RealtimePipeline's worker thread
    // matches and folds verdicts into the cluster index while this
    // thread interleaves ingest with ClusterOf() point queries -- the
    // production read path under genuine write concurrency.
    options.metrics = &metrics;  // serve.* latency histogram lives here
    std::mutex recall_mutex;
    std::unique_ptr<ClusterRecallTracker> recall;
    if (truth_ptr != nullptr) {
      recall = std::make_unique<ClusterRecallTracker>(dataset->truth);
    }
    ShardedOptions sharded_options;
    sharded_options.pipeline = options;
    sharded_options.shard_count = ingest_shards;
    ShardedPipeline realtime(
        sharded_options, matcher.get(),
        [&](ProfileId a, ProfileId b) {
          if (recall == nullptr) return;
          std::lock_guard<std::mutex> lock(recall_mutex);
          recall->AddMatch(a, b);
        });
    const auto increments =
        SplitIntoIncrements(*dataset, sim_options.num_increments);
    const size_t per_increment =
        increments.empty() ? 0 : serve_queries / increments.size();
    Rng rng(42);
    uint64_t clustered_answers = 0;
    size_t issued = 0;
    const auto issue = [&](size_t count) {
      const size_t universe = realtime.clusters().universe_size();
      if (universe == 0) return;
      for (size_t i = 0; i < count && issued < serve_queries; ++i, ++issued) {
        const auto id =
            static_cast<ProfileId>(rng.UniformInt(0, universe - 1));
        const serve::ClusterView view = realtime.ClusterOf(id);
        if (view.members.size() > 1) ++clustered_answers;
      }
    };
    const Stopwatch run_timer;
    for (const auto& inc : increments) {
      std::vector<EntityProfile> batch(
          dataset->profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
          dataset->profiles.begin() + static_cast<ptrdiff_t>(inc.end));
      realtime.Ingest(std::move(batch));
      if (!mutations.AfterIncrement(
              inc.end, inc.end - inc.begin,
              [&](ProfileId id) { return realtime.Delete({id}); },
              [&](EntityProfile p) {
                std::vector<EntityProfile> one;
                one.push_back(std::move(p));
                return realtime.Update(std::move(one));
              })) {
        return 1;
      }
      issue(per_increment);
    }
    realtime.Drain();
    issue(serve_queries - issued);  // remainder against the drained index
    const double wall_s = run_timer.ElapsedSeconds();

    const obs::Histogram* latency = metrics.GetHistogram("serve.query_ns");
    std::printf("serve: %zu queries interleaved with %zu increments "
                "(%zu profiles, %zu ingest shards) in %.2fs\n",
                issued, increments.size(), dataset->profiles.size(),
                realtime.shard_count(), wall_s);
    std::printf("serve: query latency p50=%lluns p99=%lluns\n",
                static_cast<unsigned long long>(latency->Quantile(0.5)),
                static_cast<unsigned long long>(latency->Quantile(0.99)));
    std::printf("serve: %llu matches -> %zu non-trivial clusters; %llu/%zu "
                "queries answered from a multi-member cluster\n",
                static_cast<unsigned long long>(realtime.matches_found()),
                realtime.clusters().NumNonTrivialClusters(),
                static_cast<unsigned long long>(clustered_answers), issued);
    if (mutation_rate > 0.0) {
      std::printf("serve: %llu deletes, %llu corrections interleaved\n",
                  static_cast<unsigned long long>(mutations.deletes()),
                  static_cast<unsigned long long>(mutations.updates()));
    }
    if (recall != nullptr) {
      std::printf("serve: cluster recall %.4f (%llu/%llu ground-truth "
                  "pairs co-clustered)\n",
                  recall->Recall(),
                  static_cast<unsigned long long>(recall->connected_pairs()),
                  static_cast<unsigned long long>(
                      recall->total_cluster_pairs()));
    }
    if (options.metrics != nullptr && metrics_out.is_open()) {
      obs::WriteJsonLines(metrics_out, wall_s, metrics.Snapshot());
    }
    return 0;
  }

  if (truth_ptr != nullptr && !args.count("print-matches")) {
    if (ingest_shards > 1) {
      std::fprintf(stderr,
                   "--ingest-shards applies to serving/resolution mode; the "
                   "simulator-based evaluation mode is single-engine\n");
      return Usage();
    }
    if (mutation_rate > 0.0) {
      std::fprintf(stderr,
                   "--mutation-rate applies to serving/resolution mode; the "
                   "simulator replays an append-only schedule\n");
      return Usage();
    }
    // Evaluation mode: progressive quality against the ground truth.
    const StreamSimulator simulator(&*dataset, sim_options);
    PierAdapter algorithm(options);
    RunResult result;
    if (!resume_from.empty()) {
      // Resume from a checkpoint file, or from the newest checkpoint
      // when given a directory.
      std::string snapshot_path = resume_from;
      std::error_code ec;
      if (std::filesystem::is_directory(snapshot_path, ec)) {
        const auto latest =
            persist::CheckpointManager::FindLatest(snapshot_path);
        if (!latest) {
          std::fprintf(stderr, "no checkpoints found in %s\n",
                       snapshot_path.c_str());
          return 1;
        }
        snapshot_path = *latest;
      }
      std::ifstream snapshot(snapshot_path, std::ios::binary);
      if (!snapshot) {
        std::fprintf(stderr, "cannot open %s\n", snapshot_path.c_str());
        return 1;
      }
      std::fprintf(stderr, "resuming from %s\n", snapshot_path.c_str());
      std::string resume_error;
      auto resumed =
          simulator.Resume(algorithm, *matcher, snapshot, &resume_error);
      if (!resumed) {
        std::fprintf(stderr, "cannot resume from %s: %s\n",
                     snapshot_path.c_str(), resume_error.c_str());
        return 1;
      }
      result = std::move(*resumed);
    } else {
      result = simulator.Run(algorithm, *matcher);
    }
    PrintCurveCsv(std::cout, {result});
    std::printf("\n");
    PrintSummaryTable(std::cout, {result}, result.end_time);
    PrintMatcherQualityTable(std::cout, {result});
    return 0;
  }

  // Resolution mode: print matched pairs.
  const Stopwatch run_timer;
  if (ingest_shards > 1) {
    // Sharded resolution: stream the increments through N shard
    // pipelines and print the merged match stream once drained. The
    // pairs are sorted before printing so the output is deterministic
    // regardless of cross-shard delivery interleaving.
    ShardedOptions sharded_options;
    sharded_options.pipeline = options;
    sharded_options.shard_count = ingest_shards;
    std::mutex matches_mutex;
    std::vector<std::pair<ProfileId, ProfileId>> matched_pairs;
    ShardedPipeline sharded(sharded_options, matcher.get(),
                            [&](ProfileId a, ProfileId b) {
                              std::lock_guard<std::mutex> lock(matches_mutex);
                              matched_pairs.emplace_back(std::min(a, b),
                                                         std::max(a, b));
                            });
    for (const auto& inc :
         SplitIntoIncrements(*dataset, sim_options.num_increments)) {
      std::vector<EntityProfile> batch(
          dataset->profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
          dataset->profiles.begin() + static_cast<ptrdiff_t>(inc.end));
      if (!sharded.Ingest(std::move(batch))) return 1;
      if (!mutations.AfterIncrement(
              inc.end, inc.end - inc.begin,
              [&](ProfileId id) { return sharded.Delete({id}); },
              [&](EntityProfile p) {
                std::vector<EntityProfile> one;
                one.push_back(std::move(p));
                return sharded.Update(std::move(one));
              })) {
        return 1;
      }
    }
    sharded.NotifyStreamEnd();
    sharded.Drain();
    std::sort(matched_pairs.begin(), matched_pairs.end());
    size_t printed_pairs = 0;
    for (const auto& [a, b] : matched_pairs) {
      // Sharded output is printed after the drain, so pairs that lost
      // an endpoint to a delete can (unlike the progressive single-
      // pipeline stream) be dropped from the end-state answer.
      if (mutation_rate > 0.0 && (sharded.clusters().IsDeleted(a) ||
                                  sharded.clusters().IsDeleted(b))) {
        continue;
      }
      std::printf("%u,%u\n", a, b);
      ++printed_pairs;
    }
    if (options.metrics != nullptr) {
      obs::WriteJsonLines(metrics_out, run_timer.ElapsedSeconds(),
                          metrics.Snapshot());
    }
    std::fprintf(stderr,
                 "processed %llu comparisons across %zu shards, %zu matched "
                 "pairs\n",
                 static_cast<unsigned long long>(
                     sharded.comparisons_processed()),
                 sharded.shard_count(), printed_pairs);
    if (mutation_rate > 0.0) {
      std::fprintf(stderr,
                   "mutations: %llu deletes, %llu corrections (%zu stale "
                   "pairs dropped)\n",
                   static_cast<unsigned long long>(mutations.deletes()),
                   static_cast<unsigned long long>(mutations.updates()),
                   matched_pairs.size() - printed_pairs);
    }
    return 0;
  }
  PierPipeline pipeline(options);
  const ParallelMatchExecutor executor(matcher.get(),
                                       options.execution_threads,
                                       options.metrics);
  const auto increments =
      SplitIntoIncrements(*dataset, sim_options.num_increments);
  uint64_t matches = 0;
  auto drain = [&](bool full) {
    for (;;) {
      const auto batch = pipeline.EmitBatch(1024);
      if (batch.empty()) break;
      const auto verdicts = executor.Execute(batch, pipeline.profiles());
      for (size_t i = 0; i < batch.size(); ++i) {
        if (verdicts[i].is_match) {
          std::printf("%u,%u\n", batch[i].x, batch[i].y);
          ++matches;
        }
      }
      if (!full) break;
    }
  };
  for (const auto& inc : increments) {
    std::vector<EntityProfile> batch(
        dataset->profiles.begin() + static_cast<ptrdiff_t>(inc.begin),
        dataset->profiles.begin() + static_cast<ptrdiff_t>(inc.end));
    pipeline.Ingest(std::move(batch));
    mutations.AfterIncrement(
        inc.end, inc.end - inc.begin,
        [&](ProfileId id) {
          pipeline.Delete({id});
          return true;
        },
        [&](EntityProfile p) {
          pipeline.Update({std::move(p)});
          return true;
        });
    drain(/*full=*/false);
  }
  drain(/*full=*/true);
  if (options.metrics != nullptr) {
    // No virtual clock in resolution mode: stamp the final snapshot
    // with the run's wall-clock time so it orders after any earlier
    // snapshots instead of the old constant 0.
    obs::WriteJsonLines(metrics_out, run_timer.ElapsedSeconds(),
                        metrics.Snapshot());
  }
  std::fprintf(stderr, "emitted %llu comparisons, %llu matched pairs\n",
               static_cast<unsigned long long>(
                   pipeline.comparisons_emitted()),
               static_cast<unsigned long long>(matches));
  if (mutation_rate > 0.0) {
    std::fprintf(stderr, "mutations: %llu deletes, %llu corrections\n",
                 static_cast<unsigned long long>(mutations.deletes()),
                 static_cast<unsigned long long>(mutations.updates()));
  }
  return 0;
}
