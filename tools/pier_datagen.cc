// pier_datagen: export one of the synthetic benchmark datasets (see
// datagen/generators.h) as the CSV long format that pier_cli consumes.
//
//   pier_datagen --dataset=bibliographic|movies|census|dbpedia
//                [--scale=F] [--seed=N]
//                --profiles-out=FILE [--truth-out=FILE]
//
// --scale multiplies the generator's default record counts (0.1 gives
// a quick smoke-sized dataset); --seed overrides the generator seed so
// CI runs are reproducible but distinguishable.
//
// Streaming mode (census only): constant-memory generation for corpora
// larger than RAM -- profiles go straight from the windowed-shuffle
// generator to the CSV writer, truth pairs drain as clusters complete.
//
//   pier_datagen --dataset=census --stream [--records=N] [--window=N]
//                [--seed=N] --profiles-out=FILE [--truth-out=FILE]
//
// The paper-scale nightly produces its 2M-profile corpus with
// --stream --records=2000000 --seed=424242 (see .github/workflows).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "datagen/dataset_io.h"
#include "datagen/generators.h"

namespace {

std::map<std::string, std::string> ParseArgs(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      args[arg] = "1";
    } else {
      args[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return args;
}

std::string Get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

int Usage() {
  std::fprintf(stderr,
               "usage: pier_datagen --dataset=bibliographic|movies|census|"
               "dbpedia\n"
               "                    [--scale=F] [--seed=N]\n"
               "                    --profiles-out=FILE [--truth-out=FILE]\n"
               "       pier_datagen --dataset=census --stream [--records=N]\n"
               "                    [--window=N] [--seed=N]\n"
               "                    --profiles-out=FILE [--truth-out=FILE]\n");
  return 2;
}

// Constant-memory census export: generator -> CSV, no Dataset.
int StreamCensus(const std::map<std::string, std::string>& args,
                 const std::string& profiles_path) {
  pier::CensusStreamOptions options;
  options.num_records = std::stoull(Get(args, "records", "2000000"));
  options.shuffle_window =
      std::stoull(Get(args, "window",
                      std::to_string(options.shuffle_window)));
  const uint64_t seed = std::stoull(Get(args, "seed", "0"));
  if (seed != 0) options.seed = seed;

  std::ofstream profiles_out(profiles_path);
  if (!profiles_out) {
    std::fprintf(stderr, "cannot open %s\n", profiles_path.c_str());
    return 1;
  }
  const std::string truth_path = Get(args, "truth-out", "");
  std::ofstream truth_out;
  if (!truth_path.empty()) {
    truth_out.open(truth_path);
    if (!truth_out) {
      std::fprintf(stderr, "cannot open %s\n", truth_path.c_str());
      return 1;
    }
    pier::WriteGroundTruthCsvHeader(truth_out);
  }

  pier::WriteProfilesCsvHeader(profiles_out);
  pier::CensusStreamGenerator generator(options);
  size_t profiles = 0;
  size_t pairs = 0;
  while (auto profile = generator.Next()) {
    pier::AppendProfileCsv(*profile, profiles_out);
    ++profiles;
    if (truth_out.is_open()) {
      for (const auto& [a, b] : generator.TakeCompletedTruth()) {
        pier::AppendGroundTruthPairCsv(a, b, truth_out);
        ++pairs;
      }
    }
  }
  if (truth_out.is_open()) {
    for (const auto& [a, b] : generator.TakeCompletedTruth()) {
      pier::AppendGroundTruthPairCsv(a, b, truth_out);
      ++pairs;
    }
    if (!truth_out.flush()) {
      std::fprintf(stderr, "write failed: %s\n", truth_path.c_str());
      return 1;
    }
  }
  if (!profiles_out.flush()) {
    std::fprintf(stderr, "write failed: %s\n", profiles_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "census (stream): %zu profiles, %zu truth pairs\n",
               profiles, pairs);
  return 0;
}

size_t Scaled(size_t count, double scale) {
  const auto scaled = static_cast<size_t>(static_cast<double>(count) * scale);
  return scaled < 2 ? 2 : scaled;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pier;
  const auto args = ParseArgs(argc, argv);
  const std::string name = Get(args, "dataset", "");
  const std::string profiles_path = Get(args, "profiles-out", "");
  if (name.empty() || profiles_path.empty()) return Usage();
  if (args.count("stream") != 0) {
    if (name != "census") {
      std::fprintf(stderr, "--stream supports --dataset=census only\n");
      return Usage();
    }
    return StreamCensus(args, profiles_path);
  }
  const double scale = std::stod(Get(args, "scale", "1"));
  const uint64_t seed = std::stoull(Get(args, "seed", "0"));

  Dataset dataset;
  if (name == "bibliographic") {
    BibliographicOptions options;
    options.source0_count = Scaled(options.source0_count, scale);
    options.source1_count = Scaled(options.source1_count, scale);
    if (seed != 0) options.seed = seed;
    dataset = GenerateBibliographic(options);
  } else if (name == "movies") {
    MoviesOptions options;
    options.source0_count = Scaled(options.source0_count, scale);
    options.source1_count = Scaled(options.source1_count, scale);
    if (seed != 0) options.seed = seed;
    dataset = GenerateMovies(options);
  } else if (name == "census") {
    CensusOptions options;
    options.num_records = Scaled(options.num_records, scale);
    if (seed != 0) options.seed = seed;
    dataset = GenerateCensus(options);
  } else if (name == "dbpedia") {
    DbpediaOptions options;
    options.source0_count = Scaled(options.source0_count, scale);
    options.source1_count = Scaled(options.source1_count, scale);
    if (seed != 0) options.seed = seed;
    dataset = GenerateDbpedia(options);
  } else {
    std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
    return Usage();
  }

  std::ofstream profiles_out(profiles_path);
  if (!profiles_out) {
    std::fprintf(stderr, "cannot open %s\n", profiles_path.c_str());
    return 1;
  }
  WriteProfilesCsv(dataset, profiles_out);
  if (!profiles_out.flush()) {
    std::fprintf(stderr, "write failed: %s\n", profiles_path.c_str());
    return 1;
  }

  const std::string truth_path = Get(args, "truth-out", "");
  if (!truth_path.empty()) {
    std::ofstream truth_out(truth_path);
    if (!truth_out) {
      std::fprintf(stderr, "cannot open %s\n", truth_path.c_str());
      return 1;
    }
    WriteGroundTruthCsv(dataset, truth_out);
    if (!truth_out.flush()) {
      std::fprintf(stderr, "write failed: %s\n", truth_path.c_str());
      return 1;
    }
  }

  std::fprintf(stderr, "%s: %zu profiles, %zu truth pairs\n", name.c_str(),
               dataset.profiles.size(), dataset.truth.size());
  return 0;
}
